"""Integration tests: trace generation -> simulation -> the paper's qualitative claims.

These tests exercise the whole pipeline end-to-end on deliberately small
workloads.  They check the *shape* of the results the paper reports — who
wins, roughly by how much, and in which regime — not absolute numbers.
"""

from __future__ import annotations

import pytest

from repro.cache.registry import create_policy
from repro.core.clic import CLICPolicy
from repro.core.config import CLICConfig
from repro.simulation.simulator import CacheSimulator
from repro.trace.io import read_trace, write_trace
from repro.workloads.standard import clic_window_for, standard_trace


TARGET_REQUESTS = 25_000
CACHE = 3_600


def run(policy_name: str, requests, capacity: int = CACHE) -> float:
    kwargs = {}
    if policy_name == "CLIC":
        kwargs["config"] = CLICConfig(window_size=clic_window_for(TARGET_REQUESTS))
    policy = create_policy(policy_name, capacity=capacity, **kwargs)
    return CacheSimulator(policy).run(requests).read_hit_ratio


@pytest.fixture(scope="module")
def c300_trace():
    return standard_trace("DB2_C300", seed=17, target_requests=TARGET_REQUESTS)


@pytest.fixture(scope="module")
def c60_trace():
    return standard_trace("DB2_C60", seed=17, target_requests=TARGET_REQUESTS)


class TestPaperClaims:
    def test_hint_aware_policies_win_when_locality_is_scarce(self, c300_trace):
        """Paper Section 6.1: on the low-locality TPC-C traces the hint-aware
        policies (TQ, CLIC) far outperform LRU and ARC."""
        requests = c300_trace.requests()
        lru = run("LRU", requests)
        arc = run("ARC", requests)
        tq = run("TQ", requests)
        clic = run("CLIC", requests)
        opt = run("OPT", requests)
        assert clic > arc + 0.05
        assert clic > lru + 0.05
        assert tq > lru
        assert clic >= tq - 0.02
        assert opt >= clic

    def test_all_policies_close_on_high_locality_trace(self, c60_trace):
        """Paper: on DB2_C60 even LRU performs reasonably well (the first-tier
        buffer was too small to absorb the locality)."""
        requests = c60_trace.requests()
        lru = run("LRU", requests)
        clic = run("CLIC", requests)
        opt = run("OPT", requests)
        assert lru > 0.3                    # LRU is respectable here
        assert clic >= lru - 0.05           # CLIC does not fall behind
        assert opt >= clic

    def test_clic_learns_more_from_more_cache(self, c300_trace):
        """Hit ratio should not decrease when the server cache grows."""
        requests = c300_trace.requests()
        small = run("CLIC", requests, capacity=1_200)
        large = run("CLIC", requests, capacity=6_000)
        assert large >= small - 0.02

    def test_first_tier_size_controls_residual_locality(self, c60_trace, c300_trace):
        """Figure 5 narrative: a larger DBMS buffer leaves less locality for
        the storage server, making LRU much less effective."""
        lru_small_buffer = run("LRU", c60_trace.requests())
        lru_large_buffer = run("LRU", c300_trace.requests())
        assert lru_small_buffer > lru_large_buffer + 0.2

    def test_trace_round_trip_preserves_simulation_results(self, tmp_path, c60_trace):
        """Serialising and reloading a trace must not change any policy's result."""
        requests = c60_trace.requests()
        direct = run("CLIC", requests)
        path = tmp_path / "c60.trace"
        write_trace(c60_trace, path)
        reloaded = read_trace(path)
        assert run("CLIC", reloaded.requests()) == pytest.approx(direct)

    def test_top_k_tracking_close_to_full_tracking(self, c60_trace):
        """Section 5 / Figure 9: tracking ~20 hint sets is almost as good as
        tracking all of them."""
        requests = c60_trace.requests()
        full = CacheSimulator(
            CLICPolicy(CACHE, CLICConfig(window_size=clic_window_for(TARGET_REQUESTS)))
        ).run(requests).read_hit_ratio
        top20 = CacheSimulator(
            CLICPolicy(CACHE, CLICConfig(window_size=clic_window_for(TARGET_REQUESTS), top_k=20))
        ).run(requests).read_hit_ratio
        assert top20 >= full - 0.08
