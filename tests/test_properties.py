"""Property-based tests (hypothesis) for the core data structures and invariants."""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cache.arc import ARCPolicy
from repro.cache.car import CARPolicy
from repro.cache.lru import LRUPolicy
from repro.cache.mq import MQPolicy
from repro.cache.opt import OPTPolicy
from repro.cache.tq import TQPolicy
from repro.cache.twoq import TwoQPolicy
from repro.core.clic import CLICPolicy
from repro.core.config import CLICConfig
from repro.core.outqueue import OutQueue
from repro.core.spacesaving import SpaceSaving
from repro.core.statistics import HintTable
from repro.simulation.simulator import CacheSimulator
from repro.trace.io import read_trace, write_trace
from repro.trace.records import Trace

from tests.strategies import capacities, request_streams as request_streams_strategy

pytestmark = pytest.mark.property

# Shared generators live in tests/strategies.py; this module only binds the
# sizes its properties want.
request_streams = request_streams_strategy()

ONLINE_POLICIES = [LRUPolicy, ARCPolicy, TwoQPolicy, CARPolicy, MQPolicy, TQPolicy]


# ----------------------------------------------------------------------------- policies
class TestPolicyProperties:
    @settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(stream=request_streams, capacity=capacities)
    @pytest.mark.parametrize("policy_class", ONLINE_POLICIES + [CLICPolicy])
    def test_capacity_never_exceeded(self, policy_class, stream, capacity):
        if policy_class is CLICPolicy:
            policy = CLICPolicy(capacity, CLICConfig(window_size=20, charge_metadata=False))
        else:
            policy = policy_class(capacity)
        for seq, request in enumerate(stream):
            policy.access(request, seq)
            assert len(policy) <= capacity

    @settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(stream=request_streams, capacity=capacities)
    @pytest.mark.parametrize("policy_class", ONLINE_POLICIES + [CLICPolicy])
    def test_contains_is_consistent_with_reported_hits(self, policy_class, stream, capacity):
        if policy_class is CLICPolicy:
            policy = CLICPolicy(capacity, CLICConfig(window_size=20, charge_metadata=False))
        else:
            policy = policy_class(capacity)
        for seq, request in enumerate(stream):
            expected_hit = policy.contains(request.page)
            assert policy.access(request, seq).hit == expected_hit

    @settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(stream=request_streams, capacity=capacities)
    @pytest.mark.parametrize("policy_class", ONLINE_POLICIES)
    def test_opt_read_hit_ratio_upper_bounds_online_policies(self, policy_class, stream, capacity):
        opt = CacheSimulator(OPTPolicy(capacity)).run(stream).read_hit_ratio
        online = CacheSimulator(policy_class(capacity)).run(stream).read_hit_ratio
        assert opt >= online - 1e-9

    @settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(stream=request_streams, capacity=capacities)
    def test_opt_upper_bounds_clic(self, stream, capacity):
        opt = CacheSimulator(OPTPolicy(capacity)).run(stream).read_hit_ratio
        clic_policy = CLICPolicy(capacity, CLICConfig(window_size=20, charge_metadata=False))
        clic = CacheSimulator(clic_policy).run(stream).read_hit_ratio
        assert opt >= clic - 1e-9

    @settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(stream=request_streams, capacity=capacities)
    def test_policies_are_deterministic(self, stream, capacity):
        for policy_class in (LRUPolicy, ARCPolicy):
            first = CacheSimulator(policy_class(capacity)).run(stream)
            second = CacheSimulator(policy_class(capacity)).run(stream)
            assert first.stats.as_dict() == second.stats.as_dict()

    @settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(stream=request_streams, capacity=capacities)
    def test_clic_deterministic(self, stream, capacity):
        def run():
            policy = CLICPolicy(capacity, CLICConfig(window_size=25, charge_metadata=False))
            return CacheSimulator(policy).run(stream).stats.as_dict()

        assert run() == run()

    @settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(stream=request_streams, capacity=capacities)
    def test_stats_counters_add_up(self, stream, capacity):
        policy = LRUPolicy(capacity)
        result = CacheSimulator(policy).run(stream)
        stats = result.stats
        assert stats.requests == len(stream)
        assert stats.read_hits <= stats.read_requests
        assert stats.write_hits <= stats.write_requests
        # Every cached page was admitted exactly once per residency.
        assert stats.admissions - stats.evictions == len(policy)


# -------------------------------------------------------------------------- hint table
class TestHintStatisticsProperties:
    @settings(max_examples=60, deadline=None)
    @given(
        events=st.lists(
            st.tuples(st.sampled_from(["a", "b", "c"]), st.booleans(), st.integers(1, 50)),
            max_size=200,
        )
    )
    def test_hint_table_invariants(self, events):
        table = HintTable()
        requests_seen: dict[str, int] = {}
        for key, is_request, distance in events:
            if is_request:
                table.record_request((key,))
                requests_seen[key] = requests_seen.get(key, 0) + 1
            else:
                table.record_read_rereference((key,), distance)
        for key, stats in table.snapshot().items():
            assert stats.requests == requests_seen.get(key[0], 0)
            assert stats.read_rereferences >= 0
            assert stats.distance_total >= stats.read_rereferences  # distances are >= 1
            assert stats.priority >= 0.0

    @settings(max_examples=60, deadline=None)
    @given(
        items=st.lists(st.integers(min_value=0, max_value=30), min_size=1, max_size=400),
        k=st.integers(min_value=1, max_value=10),
    )
    def test_space_saving_error_bounds(self, items, k):
        from collections import Counter

        truth = Counter(items)
        summary = SpaceSaving(k)
        for item in items:
            summary.offer(item)
        assert len(summary) <= k
        for item, entry in summary.tracked().items():
            # Classic Space-Saving guarantees.
            assert entry.count >= truth[item]
            assert entry.count - entry.error <= truth[item]
            assert entry.error <= len(items) // k

    @settings(max_examples=60, deadline=None)
    @given(
        items=st.lists(st.integers(min_value=0, max_value=8), min_size=20, max_size=400),
        k=st.integers(min_value=1, max_value=8),
    )
    def test_space_saving_catches_heavy_hitters(self, items, k):
        from collections import Counter

        summary = SpaceSaving(k)
        for item in items:
            summary.offer(item)
        threshold = len(items) / k
        for item, count in Counter(items).items():
            if count > threshold:
                assert item in summary


# ---------------------------------------------------------------------------- outqueue
class TestOutQueueProperties:
    @settings(max_examples=60, deadline=None)
    @given(
        operations=st.lists(
            st.tuples(st.integers(0, 30), st.integers(0, 1_000)), max_size=300
        ),
        capacity=st.integers(min_value=0, max_value=10),
    )
    def test_outqueue_never_exceeds_capacity(self, operations, capacity):
        queue = OutQueue(capacity)
        for page, seq in operations:
            queue.put(page, seq, ())
            assert len(queue) <= capacity

    @settings(max_examples=60, deadline=None)
    @given(
        operations=st.lists(
            st.tuples(st.integers(0, 30), st.integers(0, 1_000)), min_size=1, max_size=300
        ),
    )
    def test_outqueue_remembers_most_recent_metadata(self, operations):
        queue = OutQueue(capacity=1_000)      # effectively unbounded here
        latest: dict[int, int] = {}
        for page, seq in operations:
            queue.put(page, seq, ())
            latest[page] = seq
        for page, seq in latest.items():
            assert queue.get(page).seq == seq


# --------------------------------------------------------------------------- trace I/O
class TestTraceRoundTripProperties:
    @settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(stream=request_streams)
    def test_trace_serialization_round_trips(self, stream, tmp_path_factory):
        trace = Trace(name="prop", requests_list=list(stream), metadata={"k": 1})
        path = tmp_path_factory.mktemp("traces") / "prop.trace"
        write_trace(trace, path)
        loaded = read_trace(path)
        assert len(loaded) == len(trace)
        for original, restored in zip(trace, loaded):
            assert original.page == restored.page
            assert original.kind == restored.kind
            assert original.hints.key() == restored.hints.key()
