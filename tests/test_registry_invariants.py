"""Cross-policy invariant suite: every registry policy, one set of laws.

Before this suite, core invariants (capacity bound, counter consistency,
determinism) were pinned ad hoc per policy file; a new policy — or a wrapper
like the sharded cluster — could join the registry without inheriting any of
them.  This suite derives its policy list from the registry itself
(:mod:`repro.cache.registry`), so anything registered is automatically held
to:

* **capacity** — cached pages never exceed capacity, after every request;
* **conservation** — hits + misses == requests, for reads and writes
  separately (and per client);
* **determinism** — replaying the same stream through a same-configured
  policy yields an identical :class:`SimulationResult`;
* **outcome conservation** — the :class:`AccessOutcome` event stream is the
  single source of truth: summing its admission/eviction events reproduces
  the policy's cached-page count (``admissions - evictions == len(policy)``)
  and the stats the replay reports;
* **snapshot/restore** — ``snapshot()`` followed by ``restore()`` replays
  the identical outcome tail (service-mode/crash-recovery contract);
* **one replay loop** — :class:`CacheSimulator` is definitionally a
  one-policy :class:`MultiPolicySimulator` run.

SHARDED-wrapped variants and cost-model-priced runs are included: pricing
must never change replay outcomes, and a cluster is held to the same laws as
the policy it wraps.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cache.registry import available_policies, create_policy
from repro.core.config import CLICConfig
from repro.simulation.costmodel import CostModel
from repro.simulation.engine import (
    MultiPolicySimulator,
    ParallelSweepRunner,
    PolicySpec,
    SweepCell,
)
from repro.simulation.queueing import QueueingModel
from repro.simulation.request import RequestKind, read_request, write_request
from repro.simulation.simulator import CacheSimulator
from repro.workloads.arrivals import PoissonArrivals

from tests.strategies import request_streams

#: Constructor kwargs giving each registry policy a test-sized configuration.
_POLICY_KWARGS = {
    "CLIC": {"config": CLICConfig(window_size=20, charge_metadata=False)},
    "SHARDED": {"policy": "LRU", "shards": 3, "router": "hash"},
}

#: Sharded variants: the cluster must obey the same laws as what it wraps.
_SHARDED_VARIANTS = [
    ("SHARDED[LRU]", {"policy": "LRU", "shards": 3, "router": "hash"}),
    ("SHARDED[ARC]", {"policy": "ARC", "shards": 2, "router": "client"}),
    (
        "SHARDED[CLIC]",
        {
            "policy": "CLIC",
            "shards": 2,
            "router": "hash",
            "policy_kwargs": {
                "config": CLICConfig(window_size=20, charge_metadata=False)
            },
        },
    ),
]


def _registry_cases() -> list[tuple[str, str, dict]]:
    """(test id, registry name, kwargs) for every registered policy."""
    cases = [
        (name, name, _POLICY_KWARGS.get(name, {})) for name in available_policies()
    ]
    cases.extend(
        (label, "SHARDED", kwargs) for label, kwargs in _SHARDED_VARIANTS
    )
    return cases


CASES = _registry_cases()
CASE_IDS = [case[0] for case in CASES]

#: Capacity must exceed the shard count (each shard needs >= 1 page).
CAPACITY = 12

STREAMS = request_streams(min_size=1, max_size=120)


def _build(name: str, kwargs: dict):
    return create_policy(name, capacity=CAPACITY, **kwargs)


def _disjoint_pages(stream):
    """Remap pages into per-client ranges (the documented multi-client
    precondition: clients never share page ids — the interleaver normally
    enforces it; client-affinity routing relies on it)."""
    from repro.simulation.request import IORequest

    offsets: dict[str, int] = {}
    remapped = []
    for request in stream:
        offset = offsets.setdefault(request.client_id, 10_000 * len(offsets))
        remapped.append(
            IORequest(
                page=request.page + offset,
                kind=request.kind,
                hints=request.hints,
                client_id=request.client_id,
            )
        )
    return remapped


def _run(name: str, kwargs: dict, stream, cost_model=None):
    return CacheSimulator(_build(name, kwargs), cost_model=cost_model).run(stream)


@pytest.mark.property
class TestRegistryInvariants:
    @pytest.mark.parametrize("label,name,kwargs", CASES, ids=CASE_IDS)
    @settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(stream=STREAMS)
    def test_capacity_never_exceeded(self, label, name, kwargs, stream):
        if kwargs.get("router") == "client":
            stream = _disjoint_pages(stream)
        policy = _build(name, kwargs)
        if policy.offline:
            policy.prepare(stream, 0)
        for seq, request in enumerate(stream):
            policy.access(request, seq)
            assert len(policy) <= policy.capacity
            cached = list(policy.cached_pages())
            assert len(cached) == len(set(cached)) == len(policy)

    @pytest.mark.parametrize("label,name,kwargs", CASES, ids=CASE_IDS)
    @settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(stream=STREAMS)
    def test_counters_conserve_requests(self, label, name, kwargs, stream):
        result = _run(name, kwargs, stream)
        stats = result.stats
        reads = sum(1 for r in stream if r.kind is RequestKind.READ)
        writes = len(stream) - reads
        # hits + misses == requests, where misses = requests - hits >= 0.
        assert stats.read_requests == reads
        assert stats.write_requests == writes
        assert 0 <= stats.read_hits <= stats.read_requests
        assert 0 <= stats.write_hits <= stats.write_requests
        assert stats.requests == len(stream)
        # Per-client accounting must partition the totals exactly.
        assert sum(s.read_requests for s in result.per_client.values()) == reads
        assert sum(s.read_hits for s in result.per_client.values()) == stats.read_hits
        # Sharded runs: shards partition the stream.
        if result.per_shard:
            assert sum(s.requests for s in result.per_shard) == len(stream)
            assert sum(s.read_hits for s in result.per_shard) == stats.read_hits

    @pytest.mark.parametrize("label,name,kwargs", CASES, ids=CASE_IDS)
    @settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(stream=STREAMS)
    def test_same_stream_replay_is_identical(self, label, name, kwargs, stream):
        first = _run(name, kwargs, stream)
        second = _run(name, kwargs, stream)
        assert first.stats.as_dict() == second.stats.as_dict()
        assert {c: s.as_dict() for c, s in first.per_client.items()} == {
            c: s.as_dict() for c, s in second.per_client.items()
        }
        assert [s.as_dict() for s in first.per_shard] == [
            s.as_dict() for s in second.per_shard
        ]

    @pytest.mark.parametrize("label,name,kwargs", CASES, ids=CASE_IDS)
    @settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(stream=STREAMS)
    def test_outcome_events_conserve_cached_pages(self, label, name, kwargs, stream):
        """admissions - evictions == pages cached, from the event stream alone.

        The seed accounting drifted here for policies with hit-path drops and
        bypass-pushback (OPT) because counters were maintained ad hoc inside
        each policy; outcomes-as-events make the law checkable uniformly.
        """
        if kwargs.get("router") == "client":
            stream = _disjoint_pages(stream)
        policy = _build(name, kwargs)
        if policy.offline:
            policy.prepare(stream, 0)
        admissions = evictions = bypasses = 0
        for seq, request in enumerate(stream):
            outcome = policy.access(request, seq)
            admissions += outcome.admitted
            bypasses += outcome.bypassed
            evictions += len(outcome.evicted)
            assert admissions - evictions == len(policy)
            assert not (outcome.admitted and outcome.bypassed)
            if outcome.admitted:
                assert policy.contains(request.page)
        # The replay's stats observer must agree with the raw event stream.
        result = _run(name, kwargs, stream)
        assert result.stats.admissions == admissions
        assert result.stats.evictions == evictions
        assert result.stats.bypasses == bypasses
        assert result.stats.admissions - result.stats.evictions == len(policy)

    @pytest.mark.parametrize("label,name,kwargs", CASES, ids=CASE_IDS)
    @settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(stream=STREAMS)
    def test_snapshot_restore_replays_identical_tail(self, label, name, kwargs, stream):
        if kwargs.get("router") == "client":
            stream = _disjoint_pages(stream)
        cut = len(stream) // 2
        policy = _build(name, kwargs)
        if policy.offline:
            policy.prepare(stream, 0)
        for seq, request in enumerate(stream[:cut]):
            policy.access(request, seq)
        state = policy.snapshot()
        pages_at_snapshot = sorted(policy.cached_pages())
        first = [policy.access(r, cut + i) for i, r in enumerate(stream[cut:])]
        policy.restore(state)
        assert sorted(policy.cached_pages()) == pages_at_snapshot
        second = [policy.access(r, cut + i) for i, r in enumerate(stream[cut:])]
        assert first == second
        # A snapshot is reusable: restoring twice replays the same tail again.
        policy.restore(state)
        third = [policy.access(r, cut + i) for i, r in enumerate(stream[cut:])]
        assert first == third

    @pytest.mark.parametrize("label,name,kwargs", CASES, ids=CASE_IDS)
    @settings(max_examples=8, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(stream=STREAMS)
    def test_single_policy_simulator_equals_engine(self, label, name, kwargs, stream):
        """CacheSimulator is a one-policy engine run — results are identical."""
        model = CostModel(device="hdd", page_span=64)
        single = CacheSimulator(
            _build(name, kwargs), cost_model=model, rolling_window=32
        ).run(stream)
        engine = MultiPolicySimulator(
            [_build(name, kwargs)], cost_model=model, rolling_window=32
        ).run(stream)[0]
        assert single.stats == engine.stats
        assert single.per_client == engine.per_client
        assert single.per_shard == engine.per_shard
        assert single.rolling == engine.rolling
        assert single.latency.as_dict() == engine.latency.as_dict()
        assert [s.as_dict() for s in single.shard_latency] == [
            s.as_dict() for s in engine.shard_latency
        ]

    @pytest.mark.parametrize("label,name,kwargs", CASES, ids=CASE_IDS)
    @settings(max_examples=8, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(stream=STREAMS, device=st.sampled_from(["ssd", "hdd"]))
    def test_cost_model_never_changes_outcomes(self, label, name, kwargs, stream, device):
        """Pricing is a second accounting pass: replay outcomes are identical."""
        unpriced = _run(name, kwargs, stream)
        priced = _run(
            name, kwargs, stream, cost_model=CostModel(device=device, page_span=64)
        )
        assert priced.stats.as_dict() == unpriced.stats.as_dict()
        assert priced.latency is not None
        assert priced.latency.request_count == len(stream)

    @pytest.mark.parametrize("label,name,kwargs", CASES, ids=CASE_IDS)
    @settings(max_examples=8, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(stream=STREAMS)
    def test_queueing_observer_never_changes_outcomes(self, label, name, kwargs, stream):
        """Queueing is pure accounting: stats and latency are bit-identical
        with a :class:`QueueingObserver` attached vs detached."""
        model = CostModel(device="hdd", page_span=64)
        queueing = QueueingModel(
            arrivals=PoissonArrivals(rate_rps=8_000.0, seed=3), device="hdd"
        )
        detached = _run(name, kwargs, stream, cost_model=model)
        attached = CacheSimulator(
            _build(name, kwargs), cost_model=model, queueing_model=queueing
        ).run(stream)
        assert detached.queueing is None
        assert attached.stats.as_dict() == detached.stats.as_dict()
        assert {c: s.as_dict() for c, s in attached.per_client.items()} == {
            c: s.as_dict() for c, s in detached.per_client.items()
        }
        assert [s.as_dict() for s in attached.per_shard] == [
            s.as_dict() for s in detached.per_shard
        ]
        assert attached.latency.as_dict() == detached.latency.as_dict()
        assert attached.queueing is not None
        assert attached.queueing.request_count == len(stream)


def _queueing_sweep_cells() -> list[SweepCell]:
    """One cell per offered load, every registry policy (incl. SHARDED) in each."""
    specs = []
    for name in available_policies():
        kwargs = _POLICY_KWARGS.get(name, {})
        specs.append(PolicySpec(label=name, name=name, capacity=CAPACITY, kwargs=kwargs))
    for label, kwargs in _SHARDED_VARIANTS:
        if kwargs.get("router") == "client":
            continue  # the fixed stream below uses one client id
        specs.append(
            PolicySpec(label=label, name="SHARDED", capacity=CAPACITY, kwargs=kwargs)
        )
    base = QueueingModel(arrivals=PoissonArrivals(rate_rps=9_000.0, seed=7))
    return [
        SweepCell(x=load, specs=tuple(specs), queueing=base.scaled(load))
        for load in (0.5, 1.2)
    ]


def test_queueing_sweep_identical_across_jobs():
    """jobs=1 and jobs=2 report bit-identical queueing columns for every
    registered policy: cells replay whole inside one worker, so arrival
    clocks and queue state never cross a process boundary."""
    stream = [
        read_request(page=(seq * 7) % 23) if seq % 3 else write_request(page=seq % 11)
        for seq in range(400)
    ]
    cells = _queueing_sweep_cells()
    serial = ParallelSweepRunner(stream, jobs=1, cost_model=CostModel()).run(
        cells, parameter="offered_load"
    )
    parallel = ParallelSweepRunner(stream, jobs=2, cost_model=CostModel()).run(
        cells, parameter="offered_load"
    )
    assert serial.as_rows() == parallel.as_rows()
    for label, points in serial.series.items():
        for point in points:
            queueing = point.result.queueing
            assert queueing is not None, (label, point.x)
            assert queueing.request_count == len(stream)
