"""Batch-parity bad fixture: OrphanBatchPolicy ships a batch kernel the
parity suite can never reach — it is neither registered nor named in the
suite."""


class AccessOutcome:
    pass


class AccessOutcomeBatch:
    pass


class CachePolicy:
    def batch_access(self, chunk) -> AccessOutcomeBatch:
        return AccessOutcomeBatch()


class RegisteredBatchPolicy(CachePolicy):
    def __init__(self, capacity: int) -> None:
        self.capacity = capacity

    def access(self, request, seq) -> AccessOutcome:
        return AccessOutcome()

    def batch_access(self, chunk) -> AccessOutcomeBatch:
        return AccessOutcomeBatch()


class OrphanBatchPolicy(CachePolicy):
    def __init__(self, capacity: int) -> None:
        self.capacity = capacity

    def access(self, request, seq) -> AccessOutcome:
        return AccessOutcome()

    def batch_access(self, chunk) -> AccessOutcomeBatch:
        return AccessOutcomeBatch()
