"""Batch-parity bad fixture registry: only RegisteredBatchPolicy is here."""

from batch_parity_bad.policies import RegisteredBatchPolicy

_REGISTRY = {"BATCH": RegisteredBatchPolicy}


def available_policies():
    return sorted(_REGISTRY)
