"""Batch-parity bad fixture suite: registry-derived, so it covers the
registered policy — but it cannot reach the orphan."""

from batch_parity_bad.registry import available_policies


def test_parity() -> None:
    for name in available_policies():
        assert name
