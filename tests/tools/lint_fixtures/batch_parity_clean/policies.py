"""Batch-parity clean fixture: every batch kernel is reachable from the
parity suite — RegisteredBatchPolicy through the registry, NamedBatchPolicy
by explicit mention in the suite."""


class AccessOutcome:
    pass


class AccessOutcomeBatch:
    pass


class CachePolicy:
    def batch_access(self, chunk) -> AccessOutcomeBatch:
        return AccessOutcomeBatch()


class RegisteredBatchPolicy(CachePolicy):
    def __init__(self, capacity: int) -> None:
        self.capacity = capacity

    def access(self, request, seq) -> AccessOutcome:
        return AccessOutcome()

    def batch_access(self, chunk) -> AccessOutcomeBatch:
        return AccessOutcomeBatch()


class NamedBatchPolicy(CachePolicy):
    def __init__(self, capacity: int) -> None:
        self.capacity = capacity

    def access(self, request, seq) -> AccessOutcome:
        return AccessOutcome()

    def batch_access(self, chunk) -> AccessOutcomeBatch:
        return AccessOutcomeBatch()
