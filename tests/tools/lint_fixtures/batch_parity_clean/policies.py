"""Batch-parity clean fixture: every batch kernel is reachable from the
parity suite — RegisteredBatchPolicy and HintAwareBatchPolicy through the
registry, NamedBatchPolicy by explicit mention in the suite."""


class AccessOutcome:
    pass


class AccessOutcomeBatch:
    pass


class CachePolicy:
    def batch_access(self, chunk) -> AccessOutcomeBatch:
        return AccessOutcomeBatch()


class RegisteredBatchPolicy(CachePolicy):
    def __init__(self, capacity: int) -> None:
        self.capacity = capacity

    def access(self, request, seq) -> AccessOutcome:
        return AccessOutcome()

    def batch_access(self, chunk) -> AccessOutcomeBatch:
        return AccessOutcomeBatch()


class HintAwareBatchPolicy(CachePolicy):
    """The CLIC-shaped case: a hint-aware kernel that defers tracker updates
    to segment boundaries.  Registered, so the suite reaches it through
    ``available_policies()`` like any other fused kernel."""

    hint_aware = True

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity
        self.tracked: dict = {}

    def access(self, request, seq) -> AccessOutcome:
        return AccessOutcome()

    def batch_access(self, chunk) -> AccessOutcomeBatch:
        for hint_key in getattr(chunk, "hint_sets", ()):
            self.tracked[hint_key] = self.tracked.get(hint_key, 0) + 1
        return AccessOutcomeBatch()


class NamedBatchPolicy(CachePolicy):
    def __init__(self, capacity: int) -> None:
        self.capacity = capacity

    def access(self, request, seq) -> AccessOutcome:
        return AccessOutcome()

    def batch_access(self, chunk) -> AccessOutcomeBatch:
        return AccessOutcomeBatch()
