"""Batch-parity clean fixture registry."""

from batch_parity_clean.policies import RegisteredBatchPolicy

_REGISTRY = {"BATCH": RegisteredBatchPolicy}


def available_policies():
    return sorted(_REGISTRY)
