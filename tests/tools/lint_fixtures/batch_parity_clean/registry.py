"""Batch-parity clean fixture registry."""

from batch_parity_clean.policies import HintAwareBatchPolicy, RegisteredBatchPolicy

_REGISTRY = {"BATCH": RegisteredBatchPolicy, "HINTED": HintAwareBatchPolicy}


def available_policies():
    return sorted(_REGISTRY)
