"""Batch-parity clean fixture suite: derives cases from the registry and
names the unregistered batch policy explicitly."""

from batch_parity_clean.policies import NamedBatchPolicy
from batch_parity_clean.registry import available_policies


def test_parity() -> None:
    for name in available_policies():
        assert name


def test_named_policy() -> None:
    assert NamedBatchPolicy(capacity=4).capacity == 4
