"""Known-bad fixture: float arithmetic feeding the integer-ns clock."""


class Queue:
    def __init__(self) -> None:
        self.busy_ns = 0

    def admit(self, service_us: float) -> None:
        self.busy_ns += service_us * 1000.0  # float product into *_ns


def to_clock_ns(us: float) -> int:
    total_ns = us / 0.001  # true division into a *_ns name
    return total_ns


def service_ns(us: float):
    return us * 1000.0  # *_ns function returning float arithmetic
