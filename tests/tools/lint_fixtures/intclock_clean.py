"""Known-clean fixture: boundary conversions are explicitly truncated."""


class Queue:
    def __init__(self) -> None:
        self.busy_ns = 0

    def admit(self, service_us: float) -> None:
        self.busy_ns += int(service_us * 1000.0 + 0.5)  # sanctioned boundary


def to_clock_ns(us: float) -> int:
    total_ns = int(us * 1000.0 + 0.5)
    return total_ns


def service_ns(us: float) -> int:
    return round(us * 1000.0)
