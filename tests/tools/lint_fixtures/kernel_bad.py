"""Known-bad fixture: every kernel-contract rule fires on BadPolicy."""


class AccessOutcome:
    pass


class CachePolicy:
    pass


class BadPolicy(CachePolicy):
    # kernel-snapshot-fields: `_ghost` is never assigned anywhere.
    _SNAPSHOT_EXCLUDE = frozenset({"_ghost"})

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity

    def access(self, request, seq):  # kernel-access-outcome: no annotation
        request.page = 0  # kernel-request-mutation
        print("hit")  # kernel-no-io
        if seq < 0:
            return None  # kernel-access-outcome: bare None return
        return AccessOutcome()
