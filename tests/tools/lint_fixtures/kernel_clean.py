"""Known-clean fixture: GoodPolicy satisfies every kernel-contract rule."""


class AccessOutcome:
    pass


class CachePolicy:
    pass


class GoodPolicy(CachePolicy):
    # Both named attributes are assigned in __init__.
    _SNAPSHOT_EXCLUDE = frozenset({"_scratch"})
    _SNAPSHOT_SHARED = ("_shared_index",)

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity
        self._scratch = None
        self._shared_index = None

    def access(self, request, seq) -> AccessOutcome:
        return AccessOutcome()
