"""Known-bad fixture: every no-nondeterminism rule fires in this file."""

import os
import random
import time


def stamp() -> float:
    return time.time()  # wall-clock


def token() -> bytes:
    return os.urandom(8)  # entropy-source


def ambient_draw() -> float:
    return random.random()  # unseeded-random (process-global RNG)


def unseeded_generator() -> random.Random:
    return random.Random()  # unseeded-random (no seed argument)


def capture_order(pages: set) -> list:
    return list(pages)  # set-iteration into an ordered sink


def walk_order(pages: set) -> int:
    total = 0
    for page in pages:  # set-iteration in a for statement
        total += page
    return total
