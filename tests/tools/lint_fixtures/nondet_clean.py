"""Known-clean fixture: deterministic counterparts of nondet_bad.py."""

import random


def stamp(logical_clock_us: int) -> int:
    return logical_clock_us  # timestamps are threaded through parameters


def token(seed: int) -> bytes:
    return seed.to_bytes(8, "little")  # identifiers derive from the seed


def seeded_draw(rng: random.Random) -> float:
    return rng.random()  # the caller constructs random.Random(seed)


def seeded_generator(seed: int) -> random.Random:
    return random.Random(seed)


def capture_order(pages: set) -> list:
    return sorted(pages)  # the canonical fix


def walk_order(pages: set) -> int:
    total = 0
    for page in sorted(pages):
        total += page
    return total + len(pages) + sum(pages)  # order-insensitive folds are fine
