"""Known-bad fixture: both observer-purity rules fire on LeakyObserver."""


class ReplayObserver:
    pass


class LeakyObserver(ReplayObserver):
    def __init__(self) -> None:
        self._hits = 0

    def on_outcome(self, request, seq, outcome):
        outcome.hit = True  # observer-param-mutation
        self._hits += 1  # accumulates state, but merge() is missing

    def finalize(self):
        return self._hits
