"""Known-clean fixture: a stateful observer that only writes its own state
and implements merge() for segmented replays."""


class ReplayObserver:
    pass


class CountingObserver(ReplayObserver):
    def __init__(self) -> None:
        self._hits = 0

    def on_outcome(self, request, seq, outcome):
        if outcome.hit:
            self._hits += 1

    def merge(self, other):
        self._hits += other._hits

    def finalize(self):
        return self._hits
