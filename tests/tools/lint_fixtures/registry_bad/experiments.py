"""Registry-bad fixture: `figx` has no golden fixture in golden/."""

EXPERIMENTS = {
    "figx": "an experiment with no golden fixture",
}
