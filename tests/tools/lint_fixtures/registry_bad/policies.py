"""Registry-bad fixture: OrphanPolicy is never mentioned in registry.py."""


class AccessOutcome:
    pass


class CachePolicy:
    pass


class OrphanPolicy(CachePolicy):
    def __init__(self, capacity: int) -> None:
        self.capacity = capacity

    def access(self, request, seq) -> AccessOutcome:
        return AccessOutcome()
