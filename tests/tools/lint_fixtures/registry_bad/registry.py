"""Registry-bad fixture: the policy registry registers nothing."""

_REGISTRY = {}


def available_policies():
    return sorted(_REGISTRY)
