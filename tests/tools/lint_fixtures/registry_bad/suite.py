"""Registry-bad fixture: the invariant suite hardcodes its policy list
instead of deriving it from the registry."""

POLICIES = ["LRU", "FIFO"]


def test_all_policies() -> None:
    for name in POLICIES:
        assert name
