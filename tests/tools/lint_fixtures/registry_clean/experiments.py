"""Registry-clean fixture: `figx` is pinned by golden/figx.json."""

EXPERIMENTS = {
    "figx": "an experiment pinned by a golden fixture",
}
