"""Registry-clean fixture: GoodPolicy is registered by name."""


class AccessOutcome:
    pass


class CachePolicy:
    pass


class GoodPolicy(CachePolicy):
    def __init__(self, capacity: int) -> None:
        self.capacity = capacity

    def access(self, request, seq) -> AccessOutcome:
        return AccessOutcome()
