"""Registry-clean fixture: the policy registry mentions every policy."""

from registry_clean.policies import GoodPolicy

_REGISTRY = {"GOOD": GoodPolicy}


def available_policies():
    return sorted(_REGISTRY)
