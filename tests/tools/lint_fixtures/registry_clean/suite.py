"""Registry-clean fixture: the invariant suite derives its policy list
from the registry."""

from registry_clean.registry import available_policies


def test_all_policies() -> None:
    for name in available_policies():
        assert name
