"""Known-bad fixture for the suppression meta-rules."""

import time


def stamp() -> float:
    return time.time()  # lintkit: ignore[wall-clock]


def fine() -> int:
    return 1  # lintkit: ignore[entropy-source] stale: nothing here to suppress
