"""Known-clean fixture: a documented suppression that matches a violation."""

import time


def stamp() -> float:
    return time.time()  # lintkit: ignore[wall-clock] fixture: documented telemetry read
