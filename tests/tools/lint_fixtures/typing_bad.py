"""Known-bad fixture for the typing gate (analyzed with this module listed
in ``strict_typing_packages``): missing parameter and return annotations."""


def no_return_annotation(x: int):
    return x


def missing_params(x, *args, **kwargs) -> int:
    return x


class Thing:
    def method(self, value) -> None:
        self.value = value
