"""Known-clean fixture for the typing gate: fully annotated defs."""


def annotated(x: int, *args: int, **kwargs: int) -> int:
    return x


class Thing:
    def __init__(self, value: int):  # __init__ return is exempt
        self.value = value

    def method(self, value: int) -> None:
        self.value = value
