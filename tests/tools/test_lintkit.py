"""Self-tests for tools/lintkit: every rule family has a known-bad fixture
that must trip it and a known-clean fixture that must not, the suppression
meta-rules work, and the real source tree lints clean (with only documented
suppressions).  The mypy gate is exercised when mypy is installed (CI); the
lintkit `typing-annotations` rule is the always-available floor under it.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]
if str(REPO_ROOT) not in sys.path:  # `tools` is a repo-root package
    sys.path.insert(0, str(REPO_ROOT))

from tools.lintkit import LintConfig, run_paths  # noqa: E402
from tools.lintkit.rules import ALL_RULES, rule_catalogue  # noqa: E402

FIXTURES = Path(__file__).parent / "lint_fixtures"

#: (fixture stem, rule ids that must fire on the bad file; the clean file
#: must produce no violations from any rule in the same family)
FAMILIES = [
    (
        "nondet",
        {"wall-clock", "entropy-source", "unseeded-random", "set-iteration"},
    ),
    (
        "kernel",
        {
            "kernel-access-outcome",
            "kernel-snapshot-fields",
            "kernel-no-io",
            "kernel-request-mutation",
        },
    ),
    ("observer", {"observer-param-mutation", "observer-merge-required"}),
    ("intclock", {"int-clock-float"}),
]


def fixture_config(**overrides) -> LintConfig:
    defaults = dict(
        root=FIXTURES,
        # Point the cross-file rules away from the real repo so fixture
        # runs are self-contained.
        policy_registry_module="registry_clean.registry",
        experiment_registry_module="registry_clean.experiments",
        golden_dir="registry_clean/golden",
        invariant_suite="registry_clean/suite.py",
        batch_parity_suite="registry_clean/suite.py",
    )
    defaults.update(overrides)
    return LintConfig(**defaults)


# ----------------------------------------------------------------- catalogue
def test_rule_ids_are_unique() -> None:
    ids = [rule.rule_id for rule in ALL_RULES]
    assert len(ids) == len(set(ids))
    assert all(rule.summary for rule in ALL_RULES)


def test_catalogue_covers_every_family() -> None:
    ids = {rule_id for rule_id, _ in rule_catalogue()}
    for _, family_ids in FAMILIES:
        assert family_ids <= ids
    assert {
        "registry-golden-fixture",
        "registry-invariant-suite",
        "registry-policy-unregistered",
        "batch-kernel-parity",
        "typing-annotations",
    } <= ids


# ------------------------------------------------------------- bad vs clean
@pytest.mark.parametrize("stem,expected", FAMILIES, ids=[f[0] for f in FAMILIES])
def test_bad_fixture_trips_every_family_rule(stem: str, expected: set) -> None:
    result = run_paths(
        [FIXTURES / f"{stem}_bad.py"], fixture_config(), select=sorted(expected)
    )
    assert {v.rule_id for v in result.violations} == expected


@pytest.mark.parametrize("stem,family", FAMILIES, ids=[f[0] for f in FAMILIES])
def test_clean_fixture_passes_its_family(stem: str, family: set) -> None:
    result = run_paths(
        [FIXTURES / f"{stem}_clean.py"], fixture_config(), select=sorted(family)
    )
    assert result.violations == []


def test_typing_gate_fires_only_in_strict_packages() -> None:
    config = fixture_config(strict_typing_packages=("typing_bad", "typing_clean"))
    bad = run_paths(
        [FIXTURES / "typing_bad.py"], config, select=["typing-annotations"]
    )
    assert {v.rule_id for v in bad.violations} == {"typing-annotations"}
    # One for each un-annotated def (“no_return_annotation”, “missing_params”
    # with three missing params, “method”, plus the missing returns).
    assert len(bad.violations) >= 3
    clean = run_paths(
        [FIXTURES / "typing_clean.py"], config, select=["typing-annotations"]
    )
    assert clean.violations == []
    # The same bad file outside the strict packages is not checked at all.
    lax = run_paths(
        [FIXTURES / "typing_bad.py"],
        fixture_config(strict_typing_packages=("some.other.package",)),
        select=["typing-annotations"],
    )
    assert lax.violations == []


# ------------------------------------------------------------------ registry
_REGISTRY_RULES = [
    "registry-golden-fixture",
    "registry-invariant-suite",
    "registry-policy-unregistered",
]


def test_registry_bad_tree_trips_all_registry_rules() -> None:
    config = fixture_config(
        policy_registry_module="registry_bad.registry",
        experiment_registry_module="registry_bad.experiments",
        golden_dir="registry_bad/golden",
        invariant_suite="registry_bad/suite.py",
    )
    result = run_paths([FIXTURES / "registry_bad"], config, select=_REGISTRY_RULES)
    assert {v.rule_id for v in result.violations} == set(_REGISTRY_RULES)


def test_registry_clean_tree_passes() -> None:
    result = run_paths(
        [FIXTURES / "registry_clean"], fixture_config(), select=_REGISTRY_RULES
    )
    assert result.violations == []


def test_registry_rules_noop_without_registry_in_analysis_set() -> None:
    # A fixture-only run that does not include the registry modules must not
    # fail registry completeness: the rules only fire when the registry is
    # part of the analysis set.
    result = run_paths(
        [FIXTURES / "kernel_clean.py"],
        fixture_config(
            policy_registry_module="no.such.module",
            experiment_registry_module="no.such.experiments",
        ),
        select=_REGISTRY_RULES,
    )
    assert result.violations == []


# -------------------------------------------------------------- batch parity
def _batch_parity_config(stem: str, **overrides) -> LintConfig:
    defaults = dict(
        policy_registry_module=f"{stem}.registry",
        batch_parity_suite=f"{stem}/suite.py",
    )
    defaults.update(overrides)
    return fixture_config(**defaults)


def test_batch_parity_bad_tree_trips_rule() -> None:
    result = run_paths(
        [FIXTURES / "batch_parity_bad"],
        _batch_parity_config("batch_parity_bad"),
        select=["batch-kernel-parity"],
    )
    assert {v.rule_id for v in result.violations} == {"batch-kernel-parity"}
    # The registered policy is covered through the registry; only the orphan
    # batch kernel is flagged.
    assert len(result.violations) == 1
    assert "OrphanBatchPolicy" in result.violations[0].message


def test_batch_parity_missing_suite_is_reported() -> None:
    result = run_paths(
        [FIXTURES / "batch_parity_bad"],
        _batch_parity_config(
            "batch_parity_bad", batch_parity_suite="no/such/suite.py"
        ),
        select=["batch-kernel-parity"],
    )
    assert [v.rule_id for v in result.violations] == ["batch-kernel-parity"]
    assert "does not" in result.violations[0].message


def test_batch_parity_suite_must_derive_from_registry() -> None:
    # registry_clean/suite.py calls available_policies, but imports it from
    # a different registry module — coverage cannot be registry-derived.
    result = run_paths(
        [FIXTURES / "batch_parity_bad"],
        _batch_parity_config(
            "batch_parity_bad", batch_parity_suite="registry_clean/suite.py"
        ),
        select=["batch-kernel-parity"],
    )
    assert [v.rule_id for v in result.violations] == ["batch-kernel-parity"]
    assert "available_policies" in result.violations[0].message


def test_batch_parity_clean_tree_passes() -> None:
    result = run_paths(
        [FIXTURES / "batch_parity_clean"],
        _batch_parity_config("batch_parity_clean"),
        select=["batch-kernel-parity"],
    )
    assert result.violations == []


def test_batch_parity_noops_without_registry_in_analysis_set() -> None:
    result = run_paths(
        [FIXTURES / "kernel_clean.py"],
        fixture_config(policy_registry_module="no.such.module"),
        select=["batch-kernel-parity"],
    )
    assert result.violations == []


# -------------------------------------------------------------- suppressions
def test_suppression_meta_rules() -> None:
    result = run_paths([FIXTURES / "suppress_bad.py"], fixture_config())
    ids = {v.rule_id for v in result.violations}
    # The reason-less suppression does not silence the violation *and* is
    # itself reported; the stale suppression is reported as unused.
    assert "wall-clock" in ids
    assert "suppression-reason" in ids
    assert "suppression-unused" in ids


def test_documented_suppression_silences_and_is_recorded() -> None:
    result = run_paths([FIXTURES / "suppress_clean.py"], fixture_config())
    assert result.ok
    assert len(result.suppressed) == 1
    violation, suppression = result.suppressed[0]
    assert violation.rule_id == "wall-clock"
    assert suppression.reason


# ------------------------------------------------------------ the real tree
def test_src_repro_lints_clean() -> None:
    result = run_paths([REPO_ROOT / "src" / "repro"], LintConfig(root=REPO_ROOT))
    assert result.violations == [], "\n".join(
        v.render() for v in result.violations
    )
    # Suppressions are allowed only when documented with a reason.
    undocumented = [s for _, s in result.suppressed if not s.reason]
    assert undocumented == []


def test_cli_exit_codes() -> None:
    clean = subprocess.run(
        [sys.executable, "-m", "tools.lintkit", "src/repro"],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
    )
    assert clean.returncode == 0, clean.stdout + clean.stderr
    bad = subprocess.run(
        [
            sys.executable,
            "-m",
            "tools.lintkit",
            "--select",
            "wall-clock",
            str(FIXTURES / "nondet_bad.py"),
        ],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
    )
    assert bad.returncode == 1
    assert "wall-clock" in bad.stdout


def test_cli_unknown_rule_is_usage_error() -> None:
    result = subprocess.run(
        [sys.executable, "-m", "tools.lintkit", "--select", "no-such-rule", "src/repro"],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
    )
    assert result.returncode == 2


# ----------------------------------------------------------------- mypy gate
def test_mypy_strict_core() -> None:
    pytest.importorskip("mypy")
    result = subprocess.run(
        [sys.executable, "-m", "mypy", "--config-file", "pyproject.toml"],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
    )
    assert result.returncode == 0, result.stdout + result.stderr
