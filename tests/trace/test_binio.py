"""Tests for the binary trace format: round trips, streaming, error paths."""

from __future__ import annotations

import json
import struct

import pytest
from hypothesis import HealthCheck, given, settings

from repro.core.hints import make_hint_set
from repro.simulation.request import IORequest, RequestKind
from repro.trace.binio import (
    BLOCK_REQUESTS,
    BinaryTraceWriter,
    StreamedTrace,
    open_trace_binary,
    read_trace_binary,
    write_trace_binary,
)
from repro.trace.io import TraceFormatError, read_trace, write_trace
from repro.trace.records import Trace

from tests.conftest import hint, rd, wr
from tests.strategies import traces as traces_strategy


def sample_trace() -> Trace:
    hot = hint("db2", object_id=1, request_type="read")
    cold = hint("db2", object_id=2, request_type="replacement_write")
    requests = [rd(1, hot), rd(2, hot), wr(3, cold), rd(1, hot), wr(3, cold), rd(9)]
    return Trace(name="sample", requests_list=requests, metadata={"seed": 7, "f": 0.25})


# Round-trip inputs come from the shared strategy pool (tests/strategies.py).
traces = traces_strategy()


def assert_traces_equal(a: Trace, b: Trace) -> None:
    assert a.name == b.name
    assert len(a) == len(b)
    assert a.requests() == b.requests()
    assert a.metadata == b.metadata


# --------------------------------------------------------------- round trips


class TestRoundTrips:
    @settings(max_examples=60, suppress_health_check=[HealthCheck.too_slow], deadline=None)
    @given(trace=traces)
    def test_binary_round_trip(self, trace, tmp_path_factory):
        path = tmp_path_factory.mktemp("bin") / "t.ctb"
        write_trace_binary(trace, path)
        assert_traces_equal(read_trace_binary(path), trace)

    @settings(max_examples=30, suppress_health_check=[HealthCheck.too_slow], deadline=None)
    @given(trace=traces)
    def test_text_to_binary_to_memory(self, trace, tmp_path_factory):
        """text -> memory -> binary -> memory preserves the request stream."""
        tmp = tmp_path_factory.mktemp("conv")
        write_trace(trace, tmp / "t.trace")
        from_text = read_trace(tmp / "t.trace")
        write_trace_binary(from_text, tmp / "t.ctb")
        from_binary = read_trace_binary(tmp / "t.ctb")
        # The text format derives client ids from hint sets, so compare the
        # text-loaded trace (not the original) against its binary round trip.
        assert_traces_equal(from_binary, from_text)

    def test_round_trip_across_block_boundaries(self, tmp_path):
        h = make_hint_set("c", object_id=1)
        requests = [rd(i % 97, h) if i % 3 else wr(i % 97, h) for i in range(BLOCK_REQUESTS * 2 + 5)]
        trace = Trace(name="big", requests_list=requests)
        path = tmp_path / "big.ctb"
        write_trace_binary(trace, path)
        assert read_trace_binary(path).requests() == requests

    def test_explicit_client_id_preserved(self, tmp_path):
        h = make_hint_set("db2", object_id=1)
        trace = Trace(
            name="x",
            requests_list=[IORequest(page=1, kind=RequestKind.READ, hints=h, client_id="other")],
        )
        path = tmp_path / "x.ctb"
        write_trace_binary(trace, path)
        loaded = read_trace_binary(path)
        assert loaded[0].client_id == "other"
        assert loaded[0].hints.client_id == "db2"

    def test_hint_dictionary_is_shared_instances(self, tmp_path):
        trace = sample_trace()
        path = tmp_path / "t.ctb"
        write_trace_binary(trace, path)
        loaded = read_trace_binary(path)
        # All requests with the same hint set share one decoded instance, so
        # the memoised HintSet.key() is shared across the replay.
        assert loaded[0].hints is loaded[1].hints


# ----------------------------------------------------------------- streaming


class TestStreaming:
    def test_streamed_matches_materialized(self, tmp_path):
        trace = sample_trace()
        path = tmp_path / "t.ctb"
        write_trace_binary(trace, path)
        streamed = open_trace_binary(path)
        assert list(streamed.iter_requests()) == trace.requests()
        assert len(streamed) == len(trace)
        assert streamed.name == "sample"
        assert streamed.metadata["seed"] == 7

    def test_reiterable(self, tmp_path):
        path = tmp_path / "t.ctb"
        write_trace_binary(sample_trace(), path)
        streamed = StreamedTrace(path)
        assert list(streamed) == list(streamed)

    def test_chunks_cover_stream_in_order(self, tmp_path):
        h = make_hint_set("c", object_id=0)
        requests = [rd(i, h) for i in range(BLOCK_REQUESTS + 10)]
        path = tmp_path / "t.ctb"
        write_trace_binary(Trace(name="t", requests_list=requests), path)
        chunks = list(StreamedTrace(path).iter_chunks())
        assert len(chunks) == 2
        assert [len(chunks[0]), len(chunks[1])] == [BLOCK_REQUESTS, 10]
        assert [r for chunk in chunks for r in chunk] == requests

    def test_writer_streams_without_trace_object(self, tmp_path):
        path = tmp_path / "gen.ctb"
        h = make_hint_set("c", object_id=3)
        with BinaryTraceWriter(path, name="gen", metadata={"kind": "synthetic"}) as writer:
            for i in range(10):
                writer.write(rd(i, h))
            writer.update_metadata({"emitted": writer.request_count})
        loaded = read_trace_binary(path)
        assert len(loaded) == 10
        assert loaded.metadata == {"kind": "synthetic", "emitted": 10}

    def test_failed_write_leaves_no_file(self, tmp_path):
        path = tmp_path / "broken.ctb"
        with pytest.raises(RuntimeError):
            with BinaryTraceWriter(path, name="broken") as writer:
                writer.write(rd(1))
                raise RuntimeError("generator blew up")
        assert not path.exists()


# --------------------------------------------------------------- error paths


def _write_sample(tmp_path):
    path = tmp_path / "t.ctb"
    write_trace_binary(sample_trace(), path)
    return path


class TestErrors:
    def test_bad_magic(self, tmp_path):
        path = tmp_path / "bad.ctb"
        path.write_bytes(b"NOTATRACE" * 4)
        with pytest.raises(TraceFormatError, match="magic"):
            StreamedTrace(path)

    def test_unsupported_version(self, tmp_path):
        path = _write_sample(tmp_path)
        data = bytearray(path.read_bytes())
        data[6] = 99  # version byte follows the 6-byte magic
        path.write_bytes(bytes(data))
        with pytest.raises(TraceFormatError, match="version 99"):
            StreamedTrace(path)

    def test_truncated_file(self, tmp_path):
        path = _write_sample(tmp_path)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) - 20])
        with pytest.raises(TraceFormatError, match="truncated|trailer"):
            StreamedTrace(path)

    def test_truncation_detected_by_streaming(self, tmp_path):
        """A file cut off mid-blocks fails even if iteration starts fine."""
        path = _write_sample(tmp_path)
        streamed = StreamedTrace(path)
        data = path.read_bytes()
        # Rewrite with the END record and footer stripped: the summary was
        # already parsed, so only iteration notices.
        path.write_bytes(data[:20])
        with pytest.raises(TraceFormatError):
            list(streamed.iter_requests())

    def test_undefined_hint_set_id(self, tmp_path):
        path = _write_sample(tmp_path)
        data = bytearray(path.read_bytes())
        # Corrupt the first request record's hint reference to an undefined
        # id: find the first BLOCK tag (0x03) after the dictionary entries.
        idx = data.index(bytes([0x03]), 7)
        # BLOCK: tag, varint count, varint length, then flags byte, page
        # varint, hint varint.  The sample's first request is page 1, hint 1:
        # bytes [flags, 0x01, 0x01].  Bump the hint ref far out of range.
        body_start = idx + 3
        assert data[body_start + 1] == 0x01 and data[body_start + 2] == 0x01
        data[body_start + 2] = 0x7F
        path.write_bytes(bytes(data))
        with pytest.raises(TraceFormatError, match="undefined hint set id"):
            list(StreamedTrace(path).iter_requests())

    def test_end_count_mismatch(self, tmp_path):
        path = _write_sample(tmp_path)
        data = bytearray(path.read_bytes())
        end_offset = struct.unpack("<Q", data[-16:-8])[0]
        assert data[end_offset] == 0x04
        data[end_offset + 1] = 0x05  # sample has 6 requests; claim 5
        path.write_bytes(bytes(data))
        with pytest.raises(TraceFormatError, match="declares 5 requests"):
            list(StreamedTrace(path).iter_requests())

    def test_metadata_must_be_object(self, tmp_path):
        path = tmp_path / "bad.ctb"
        payload = json.dumps([1, 2]).encode()
        body = b"CLICBT" + bytes([1]) + bytes([0x01, len(payload)]) + payload
        end_offset = len(body)
        body += bytes([0x04, 0, 2]) + b"{}"
        body += struct.pack("<Q8s", end_offset, b"CLICEND\x00")
        path.write_bytes(body)
        with pytest.raises(TraceFormatError, match="JSON object"):
            StreamedTrace(path)


# ------------------------------------------------- columnar decode edge cases


def _finish_file(body: bytearray, count: int) -> bytes:
    """Append a well-formed END record + footer declaring *count* requests."""
    end_offset = len(body)
    body += bytes([0x04, count, 2]) + b"{}"
    body += struct.pack("<Q8s", end_offset, b"CLICEND\x00")
    return bytes(body)


class TestColumnarDecodeEdgeCases:
    """iter_columnar must agree with iter_chunks on the decoder's corners:
    empty blocks, single-request blocks, oversized varints, and garbled
    blocks (same TraceFormatError, same message)."""

    def test_empty_block_decodes_identically(self, tmp_path):
        # An empty BLOCK (count 0, length 0) is valid; the vectorised decoder
        # declines it (nothing to vectorise) and the fallback must produce
        # the same empty chunk the scalar path does.
        path = tmp_path / "empty.ctb"
        body = bytearray(b"CLICBT" + bytes([1]))
        body += bytes([0x03, 0x00, 0x00])
        path.write_bytes(_finish_file(body, count=0))

        streamed = StreamedTrace(path)
        scalar_chunks = list(streamed.iter_chunks())
        columnar_chunks = list(streamed.iter_columnar())
        assert scalar_chunks == [[]]
        assert len(columnar_chunks) == 1
        assert len(columnar_chunks[0]) == 0
        assert columnar_chunks[0].requests() == []

    def test_single_request_block_decodes_columnar(self, tmp_path):
        path = tmp_path / "one.ctb"
        with BinaryTraceWriter(path, name="one") as writer:
            writer.write(rd(5, hint("db2", object_id=9)))
        streamed = StreamedTrace(path)
        (chunk,) = streamed.iter_columnar()
        # The vectorised decoder handled it (a fallback chunk arrives with
        # its request list pre-memoised by from_requests).
        assert chunk._requests is None
        (scalar_chunk,) = streamed.iter_chunks()
        assert chunk.requests() == scalar_chunk
        assert chunk.seq_list() == [0]

    def test_oversized_varint_falls_back_to_scalar(self, tmp_path):
        # page = 2**60 needs a 9-byte varint: its value still fits an int64,
        # but the vectorised decoder's 8-byte (56-bit payload) lane limit
        # cannot prove that, so the block must take the scalar fallback and
        # decode to identical requests.
        from repro.trace.binio import _decode_block, _decode_block_columnar, _encode_varint

        big = 2**60
        record = bytes([0]) + _encode_varint(big) + _encode_varint(0)
        assert len(_encode_varint(big)) == 9
        assert _decode_block_columnar(record, 1, 0) is None
        (request,) = _decode_block(record, 1, {}, 0)
        assert request.page == big

        path = tmp_path / "big.ctb"
        with BinaryTraceWriter(path, name="big") as writer:
            writer.write(rd(big))
            writer.write(rd(1))
        streamed = StreamedTrace(path)
        (chunk,) = streamed.iter_columnar()
        assert chunk._requests is not None  # fallback path was taken
        (scalar_chunk,) = streamed.iter_chunks()
        assert chunk.requests() == scalar_chunk
        assert chunk.page.tolist() == [big, 1]

    def test_garbled_block_raises_identically_on_both_paths(self, tmp_path):
        # A BLOCK declaring one request with an empty body is garbled; the
        # columnar path must surface the exact scalar TraceFormatError.
        path = tmp_path / "garbled.ctb"
        body = bytearray(b"CLICBT" + bytes([1]))
        body += bytes([0x03, 0x01, 0x00])
        path.write_bytes(_finish_file(body, count=1))

        streamed = StreamedTrace(path)
        with pytest.raises(TraceFormatError) as scalar_err:
            list(streamed.iter_chunks())
        with pytest.raises(TraceFormatError) as columnar_err:
            list(streamed.iter_columnar())
        assert str(columnar_err.value) == str(scalar_err.value)
        assert "declared 1 requests" in str(scalar_err.value)

    def test_truncated_record_raises_identically_on_both_paths(self, tmp_path):
        # A record cut off inside its page varint: the clear-bit structure
        # check rejects it columnar-side, and the scalar decoder runs off
        # the end — both must raise the same error.
        path = tmp_path / "cut.ctb"
        body = bytearray(b"CLICBT" + bytes([1]))
        payload = bytes([0x00, 0x80])  # flags + dangling continuation byte
        body += bytes([0x03, 0x01, len(payload)]) + payload
        path.write_bytes(_finish_file(body, count=1))

        streamed = StreamedTrace(path)
        with pytest.raises(TraceFormatError) as scalar_err:
            list(streamed.iter_chunks())
        with pytest.raises(TraceFormatError) as columnar_err:
            list(streamed.iter_columnar())
        assert str(columnar_err.value) == str(scalar_err.value)
        assert "garbled block record" in str(scalar_err.value)
