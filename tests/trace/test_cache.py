"""Tests for the on-disk trace cache and the TraceSpec lazy source."""

from __future__ import annotations

import os
import pickle

import pytest

from repro.trace.cache import (
    CACHE_ENV_VAR,
    TraceCache,
    TraceSpec,
    default_trace_cache,
    set_default_trace_cache,
)
from repro.workloads.standard import standard_trace

SPEC = TraceSpec("MY_H65", seed=5, target_requests=800)


class TestTraceCache:
    def test_miss_generates_then_hit_reuses(self, tmp_path):
        cache = TraceCache(root=tmp_path)
        path = cache.ensure(SPEC)
        assert path.exists()
        assert (cache.hits, cache.misses) == (0, 1)
        again = cache.ensure(SPEC)
        assert again == path
        assert (cache.hits, cache.misses) == (1, 1)

    def test_cached_trace_matches_direct_generation(self, tmp_path):
        cache = TraceCache(root=tmp_path)
        cached = cache.load(SPEC)
        direct = standard_trace("MY_H65", seed=5, target_requests=800)
        assert cached.requests() == direct.requests()
        assert cached.metadata == direct.metadata
        assert cached.name == direct.name

    def test_key_separates_generation_parameters(self, tmp_path):
        cache = TraceCache(root=tmp_path)
        paths = {
            cache.path_for(spec)
            for spec in (
                SPEC,
                TraceSpec("MY_H65", seed=6, target_requests=800),
                TraceSpec("MY_H65", seed=5, target_requests=900),
                TraceSpec("MY_H65", seed=5, target_requests=800, client_id="c-1"),
                TraceSpec("MY_H98", seed=5, target_requests=800),
            )
        }
        assert len(paths) == 5

    def test_spec_is_cheap_to_pickle(self):
        blob = pickle.dumps(SPEC)
        assert len(blob) < 200
        assert pickle.loads(blob) == SPEC

    def test_arrivals_overlay_reuses_the_cached_binary(self, tmp_path):
        """The arrival overlay is deliberately *excluded* from the cache
        key — it stamps timestamps onto the replayed stream without
        changing the requests — but *included* in equality, so sweep
        grouping treats timed and untimed replays as distinct streams."""
        from repro.workloads.arrivals import PoissonArrivals

        cache = TraceCache(root=tmp_path)
        timed = SPEC.with_arrivals(PoissonArrivals(5_000.0, seed=3))
        assert cache.path_for(timed) == cache.path_for(SPEC)
        assert timed != SPEC
        assert timed.with_arrivals(None) == SPEC
        assert hash(timed) != hash(SPEC)
        assert pickle.loads(pickle.dumps(timed)) == timed

    def test_iter_timed_pairs_arrivals_with_requests(self, tmp_path):
        from repro.workloads.arrivals import PoissonArrivals

        set_default_trace_cache(TraceCache(root=tmp_path))
        try:
            arrivals = PoissonArrivals(5_000.0, seed=3)
            timed = SPEC.with_arrivals(arrivals)
            pairs = list(timed.iter_timed())
            assert [request for _, request in pairs] == list(SPEC.iter_requests())
            times = [t for t, _ in pairs]
            assert times == sorted(times)
            import itertools

            assert times == list(itertools.islice(arrivals.times(), len(pairs)))
        finally:
            set_default_trace_cache(None)

    def test_iter_timed_requires_an_overlay(self):
        with pytest.raises(ValueError, match="no arrival overlay"):
            SPEC.iter_timed()

    def test_spec_streams_through_default_cache(self, tmp_path):
        cache = TraceCache(root=tmp_path)
        set_default_trace_cache(cache)
        try:
            streamed = list(SPEC.iter_requests())
            assert streamed == standard_trace("MY_H65", seed=5, target_requests=800).requests()
            assert cache.misses == 1
            assert len(list(SPEC)) == 800
            assert cache.hits >= 1
        finally:
            set_default_trace_cache(None)

    def test_env_var_overrides_directory(self, tmp_path, monkeypatch):
        monkeypatch.setenv(CACHE_ENV_VAR, str(tmp_path / "custom"))
        cache = TraceCache()
        assert cache.enabled
        assert cache.root == tmp_path / "custom"

    def test_env_var_disables(self, monkeypatch):
        monkeypatch.setenv(CACHE_ENV_VAR, "off")
        cache = TraceCache()
        assert not cache.enabled

    def test_explicit_root_overrides_disabling_env(self, tmp_path, monkeypatch):
        # Consumers that build their own cache (benchmarks, tests) must get
        # a working cache even when the user has exported REPRO_TRACE_CACHE=off.
        monkeypatch.setenv(CACHE_ENV_VAR, "off")
        cache = TraceCache(root=tmp_path)
        assert cache.enabled
        assert cache.ensure(SPEC).exists()

    def test_disabled_cache_still_serves_traces(self, tmp_path, monkeypatch):
        cache = TraceCache(root=tmp_path, enabled=False)
        trace = cache.load(SPEC)
        assert len(trace) == 800
        assert list(tmp_path.iterdir()) == []  # nothing written
        with pytest.raises(RuntimeError):
            cache.ensure(SPEC)
        # The streaming surface still works, backed by memory.
        assert len(list(cache.open(SPEC).iter_requests())) == 800

    def test_disabled_spec_ensure_is_noop(self, tmp_path):
        cache = TraceCache(root=tmp_path, enabled=False)
        set_default_trace_cache(cache)
        try:
            SPEC.ensure()
            assert list(tmp_path.iterdir()) == []
        finally:
            set_default_trace_cache(None)

    def test_summary_reports_counts(self, tmp_path):
        cache = TraceCache(root=tmp_path)
        cache.ensure(SPEC)
        cache.ensure(SPEC)
        assert "hits=1" in cache.summary()
        assert "misses=1" in cache.summary()

    def test_default_cache_resolves_from_env(self):
        # The session fixture points CACHE_ENV_VAR at a temp dir.
        cache = default_trace_cache()
        assert cache.enabled
        assert str(cache.root) == os.environ[CACHE_ENV_VAR]
