"""Tests for noise-hint injection (Section 6.3) and trace statistics."""

from __future__ import annotations

from collections import Counter

import pytest

from repro.trace.noise import ZipfSampler, inject_noise_hints, inject_noise_into_trace
from repro.trace.records import Trace
from repro.trace.stats import (
    hint_set_frequencies,
    request_type_mix,
    reuse_distance_profile,
)

from tests.conftest import hint, rd, wr


class TestZipfSampler:
    def test_values_within_domain(self):
        import random

        sampler = ZipfSampler(10, skew=1.0, rng=random.Random(1))
        samples = [sampler.sample() for _ in range(1000)]
        assert min(samples) >= 0 and max(samples) < 10

    def test_skew_favours_low_ranks(self):
        import random

        sampler = ZipfSampler(10, skew=1.0, rng=random.Random(2))
        counts = Counter(sampler.sample() for _ in range(5000))
        assert counts[0] > counts[9]
        assert counts[0] > counts[4]

    def test_zero_skew_is_roughly_uniform(self):
        import random

        sampler = ZipfSampler(4, skew=0.0, rng=random.Random(3))
        counts = Counter(sampler.sample() for _ in range(8000))
        for value in range(4):
            assert 0.15 < counts[value] / 8000 < 0.35

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            ZipfSampler(0)
        with pytest.raises(ValueError):
            ZipfSampler(5, skew=-1)

    def test_single_value_domain(self):
        import random

        sampler = ZipfSampler(1, rng=random.Random(4))
        assert sampler.sample() == 0


class TestNoiseInjection:
    def test_adds_t_hint_types(self):
        requests = [rd(1, hint("db2", a=1)), wr(2, hint("db2", a=2))]
        noisy = inject_noise_hints(requests, num_types=3, domain_size=10, seed=5)
        for request in noisy:
            assert len(request.hints) == 1 + 3
            assert "noise_0" in request.hints and "noise_2" in request.hints

    def test_zero_types_returns_copy_unchanged(self):
        requests = [rd(1, hint("db2", a=1))]
        noisy = inject_noise_hints(requests, num_types=0)
        assert noisy is not requests
        assert noisy[0].hints == requests[0].hints

    def test_pages_and_kinds_preserved(self):
        requests = [rd(1, hint("db2", a=1)), wr(9, hint("db2", a=1))]
        noisy = inject_noise_hints(requests, num_types=1, seed=3)
        assert [r.page for r in noisy] == [1, 9]
        assert noisy[0].is_read and noisy[1].is_write

    def test_noise_values_within_domain(self):
        requests = [rd(i, hint("db2", a=1)) for i in range(200)]
        noisy = inject_noise_hints(requests, num_types=2, domain_size=10, seed=7)
        for request in noisy:
            assert 0 <= request.hints.get("noise_0") < 10
            assert 0 <= request.hints.get("noise_1") < 10

    def test_noise_multiplies_distinct_hint_sets(self):
        # Section 6.3: injection splits each original hint set into up to D**T variants.
        requests = [rd(i % 5, hint("db2", a=1)) for i in range(2000)]
        noisy = inject_noise_hints(requests, num_types=2, domain_size=10, seed=1)
        original = len(hint_set_frequencies(requests))
        diluted = len(hint_set_frequencies(noisy))
        assert original == 1
        assert diluted > 10
        assert diluted <= 100

    def test_deterministic_for_fixed_seed(self):
        requests = [rd(i, hint("db2", a=1)) for i in range(50)]
        a = inject_noise_hints(requests, num_types=2, seed=42)
        b = inject_noise_hints(requests, num_types=2, seed=42)
        assert [r.hints for r in a] == [r.hints for r in b]

    def test_negative_types_rejected(self):
        with pytest.raises(ValueError):
            inject_noise_hints([], num_types=-1)

    def test_trace_wrapper_updates_name_and_metadata(self):
        trace = Trace(name="base", requests_list=[rd(1, hint("db2", a=1))])
        noisy = inject_noise_into_trace(trace, num_types=2, seed=3)
        assert noisy.name == "base+T2"
        assert noisy.metadata["noise_types"] == 2
        assert len(noisy) == 1


class TestTraceStats:
    def test_hint_set_frequencies(self):
        a = hint("db2", t="a")
        b = hint("db2", t="b")
        counts = hint_set_frequencies([rd(1, a), rd(2, a), rd(3, b)])
        assert counts[a.key()] == 2
        assert counts[b.key()] == 1

    def test_request_type_mix(self):
        reads = hint("db2", request_type="read")
        writes = hint("db2", request_type="replacement_write")
        mix = request_type_mix([rd(1, reads), wr(2, writes), wr(3, writes)])
        assert mix["read"] == 1
        assert mix["replacement_write"] == 2

    def test_request_type_mix_handles_missing_hint(self):
        mix = request_type_mix([rd(1)])
        assert mix["<none>"] == 1

    def test_reuse_profile_counts_read_rereferences(self):
        requests = [rd(1), rd(2), rd(1), wr(2), rd(2)]
        profile = reuse_distance_profile(requests)
        # Read re-refs: page 1 at distance 2 and page 2 (read after its write)
        # at distance 1; the write itself is not a read re-reference.
        assert profile.read_rereferences == 2
        assert profile.unique_pages == 2
        assert profile.requests == 5
        assert profile.rereference_fraction == pytest.approx(2 / 5)
        assert profile.mean_reuse_distance == pytest.approx(1.5)

    def test_reuse_profile_empty(self):
        profile = reuse_distance_profile([])
        assert profile.requests == 0
        assert profile.rereference_fraction == 0.0
        assert profile.mean_reuse_distance == 0.0
