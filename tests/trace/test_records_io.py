"""Tests for the trace container, Figure 5 summaries, and trace serialization."""

from __future__ import annotations

import pytest

from repro.simulation.request import RequestKind
from repro.trace.io import TraceFormatError, read_trace, write_trace
from repro.trace.records import Trace

from tests.conftest import hint, rd, wr


def sample_trace() -> Trace:
    hot = hint("db2", object_id=1, request_type="read")
    cold = hint("db2", object_id=2, request_type="replacement_write")
    requests = [rd(1, hot), rd(2, hot), wr(3, cold), rd(1, hot), wr(3, cold)]
    return Trace(name="sample", requests_list=requests, metadata={"seed": 7})


class TestTrace:
    def test_len_and_iteration(self):
        trace = sample_trace()
        assert len(trace) == 5
        assert [r.page for r in trace] == [1, 2, 3, 1, 3]

    def test_indexing(self):
        trace = sample_trace()
        assert trace[0].page == 1
        assert trace[-1].page == 3

    def test_summary_counts_match_figure5_columns(self):
        summary = sample_trace().summary()
        assert summary.requests == 5
        assert summary.reads == 3
        assert summary.writes == 2
        assert summary.distinct_pages == 3
        assert summary.distinct_hint_sets == 2

    def test_summary_as_dict(self):
        d = sample_trace().summary().as_dict()
        assert d["trace"] == "sample"
        assert d["distinct_hint_sets"] == 2

    def test_append_and_extend(self):
        trace = Trace(name="t")
        trace.append(rd(1))
        trace.extend([rd(2), wr(3)])
        assert len(trace) == 3

    def test_truncated(self):
        trace = sample_trace()
        short = trace.truncated(2)
        assert len(short) == 2
        assert len(trace) == 5
        assert short.metadata == trace.metadata

    def test_distinct_sets(self):
        trace = sample_trace()
        assert trace.distinct_pages() == {1, 2, 3}
        assert len(trace.distinct_hint_sets()) == 2


class TestTraceIO:
    def test_round_trip(self, tmp_path):
        trace = sample_trace()
        path = tmp_path / "sample.trace"
        write_trace(trace, path)
        loaded = read_trace(path)
        assert loaded.name == "sample"
        assert len(loaded) == len(trace)
        for original, restored in zip(trace, loaded):
            assert original.page == restored.page
            assert original.kind == restored.kind
            assert original.hints.key() == restored.hints.key()

    def test_metadata_round_trip(self, tmp_path):
        trace = sample_trace()
        path = tmp_path / "sample.trace"
        write_trace(trace, path)
        assert read_trace(path).metadata["seed"] == 7

    def test_hint_sets_dictionary_encoded(self, tmp_path):
        trace = sample_trace()
        path = tmp_path / "sample.trace"
        write_trace(trace, path)
        text = path.read_text()
        assert text.count("#hintset") == 2     # one definition per distinct hint set

    def test_empty_hint_sets_supported(self, tmp_path):
        trace = Trace(name="plain", requests_list=[rd(1), wr(2)])
        path = tmp_path / "plain.trace"
        write_trace(trace, path)
        loaded = read_trace(path)
        assert loaded[0].hints.key() == ("", ())
        assert loaded[1].kind is RequestKind.WRITE

    def test_malformed_request_line_rejected(self, tmp_path):
        path = tmp_path / "bad.trace"
        path.write_text("R 1\n")
        with pytest.raises(TraceFormatError):
            read_trace(path)

    def test_unknown_kind_rejected(self, tmp_path):
        path = tmp_path / "bad.trace"
        path.write_text("X 1 0\n")
        with pytest.raises(TraceFormatError):
            read_trace(path)

    def test_undefined_hint_set_rejected(self, tmp_path):
        path = tmp_path / "bad.trace"
        path.write_text("R 1 7\n")
        with pytest.raises(TraceFormatError):
            read_trace(path)

    def test_malformed_hint_set_rejected(self, tmp_path):
        path = tmp_path / "bad.trace"
        path.write_text("#hintset 0 {not json}\nR 1 0\n")
        with pytest.raises(TraceFormatError):
            read_trace(path)

    def test_malformed_meta_json_rejected_with_line_number(self, tmp_path):
        path = tmp_path / "bad.trace"
        path.write_text("#meta {not json}\nR 1 -1\n")
        with pytest.raises(TraceFormatError, match="line 1"):
            read_trace(path)

    def test_meta_must_be_json_object(self, tmp_path):
        path = tmp_path / "bad.trace"
        path.write_text('#meta [1, 2]\n')
        with pytest.raises(TraceFormatError, match="line 1.*object"):
            read_trace(path)

    def test_non_integer_hint_set_id_rejected(self, tmp_path):
        path = tmp_path / "bad.trace"
        path.write_text('#hintset x {"client":"c","names":[],"values":[]}\n')
        with pytest.raises(TraceFormatError, match="line 1.*non-integer hint set id"):
            read_trace(path)

    def test_truncated_hint_set_line_rejected(self, tmp_path):
        path = tmp_path / "bad.trace"
        path.write_text("#hintset 0\n")
        with pytest.raises(TraceFormatError, match="line 1"):
            read_trace(path)

    def test_error_reports_offending_line_number(self, tmp_path):
        trace = sample_trace()
        path = tmp_path / "bad.trace"
        write_trace(trace, path)
        path.write_text(path.read_text() + "R one 0\n")
        # 1 meta + 2 hintset + 5 request lines precede the bad line.
        with pytest.raises(TraceFormatError, match="line 9: non-integer field"):
            read_trace(path)

    def test_undefined_hint_set_error_names_id_and_line(self, tmp_path):
        path = tmp_path / "bad.trace"
        path.write_text("R 1 0\nR 2 7\n")
        with pytest.raises(TraceFormatError) as excinfo:
            read_trace(path)
        assert "line 1" in str(excinfo.value)
        assert "undefined hint set id 0" in str(excinfo.value)

    def test_blank_lines_ignored(self, tmp_path):
        trace = sample_trace()
        path = tmp_path / "sample.trace"
        write_trace(trace, path)
        path.write_text(path.read_text() + "\n\n")
        assert len(read_trace(path)) == 5
