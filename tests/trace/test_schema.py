"""Tests for the DB2/MySQL hint schemas (paper Figure 2)."""

from __future__ import annotations

import pytest

from repro.trace.schema import (
    DB2_HINT_NAMES,
    MYSQL_HINT_NAMES,
    RequestType,
    db2_schema,
    mysql_schema,
)


class TestDB2Schema:
    def test_five_hint_types_in_order(self):
        schema = db2_schema()
        assert schema.names == DB2_HINT_NAMES
        assert len(schema) == 5

    def test_default_cardinalities_match_tpcc_column(self):
        # Figure 2 (TPC-C column): pool 2, object 21, object type 6,
        # request type 5, buffer priority 4.
        schema = db2_schema()
        cards = [ht.cardinality for ht in schema]
        assert cards == [2, 21, 6, 5, 4]

    def test_request_type_domain_carries_write_hints(self):
        schema = db2_schema()
        domain = set(schema["request_type"].domain)
        assert RequestType.REPLACEMENT_WRITE in domain
        assert RequestType.RECOVERY_WRITE in domain
        assert RequestType.SYNCHRONOUS_WRITE in domain
        assert RequestType.PREFETCH_READ in domain

    def test_custom_cardinalities(self):
        schema = db2_schema(num_pools=5, num_objects=23, num_object_types=9)
        assert schema["pool_id"].cardinality == 5
        assert schema["object_id"].cardinality == 23
        assert schema["object_type_id"].cardinality == 9

    def test_client_id_namespaces_schema(self):
        a = db2_schema(client_id="db2-a").make_hint_set([0, 0, 0, "read", 0])
        b = db2_schema(client_id="db2-b").make_hint_set([0, 0, 0, "read", 0])
        assert a != b

    def test_max_hint_sets_is_domain_product(self):
        assert db2_schema().max_hint_sets() == 2 * 21 * 6 * 5 * 4


class TestMySQLSchema:
    def test_four_hint_types_in_order(self):
        schema = mysql_schema()
        assert schema.names == MYSQL_HINT_NAMES
        assert len(schema) == 4

    def test_default_cardinalities_match_figure2(self):
        # Figure 2 (MySQL TPC-H): thread 5, request type 3, file 9, fix count 2.
        cards = [ht.cardinality for ht in mysql_schema()]
        assert cards == [5, 3, 9, 2]

    def test_request_type_has_three_values(self):
        domain = mysql_schema()["request_type"].domain
        assert set(domain) == {
            RequestType.READ,
            RequestType.REPLACEMENT_WRITE,
            RequestType.RECOVERY_WRITE,
        }

    def test_descriptions_present(self):
        for row in mysql_schema().describe():
            assert row["description"]


class TestRequestTypeConstants:
    def test_write_values_are_disjoint_from_read_values(self):
        assert not set(RequestType.WRITE_VALUES) & set(RequestType.READ_VALUES)

    def test_db2_values_superset_of_mysql_values(self):
        assert set(RequestType.MYSQL_VALUES) <= set(RequestType.DB2_VALUES)
