"""Contracts of the deterministic arrival processes.

The load experiment (and the queueing observer's segment-resume path)
lean on three promises: arrival times are *pure functions* of
``(seed, sequence index)`` (no hidden RNG state), ``times(k)`` is exactly
the tail of ``times(0)`` bit for bit, and ``scaled()`` rescales the rate
while keeping the underlying uniforms (which is what makes queueing
delays pathwise monotone in offered load).
"""

from __future__ import annotations

import math
import pickle
from itertools import islice

import pytest

from repro.workloads.arrivals import (
    ARRIVAL_KINDS,
    BurstyArrivals,
    DiurnalArrivals,
    PoissonArrivals,
    build_arrivals,
    unit_uniform,
)

ALL_PROCESSES = [
    PoissonArrivals(8_000.0, seed=3),
    BurstyArrivals.with_mean(8_000.0, seed=3),
    DiurnalArrivals(8_000.0, amplitude=0.5, period_s=2.0, seed=3),
]
PROCESS_IDS = [type(process).__name__ for process in ALL_PROCESSES]


def _take(process, n: int, start_seq: int = 0) -> list[float]:
    return list(islice(process.times(start_seq), n))


class TestUnitUniform:
    def test_open_interval_and_determinism(self):
        values = [unit_uniform(seed=9, index=i) for i in range(2_000)]
        assert all(0.0 < value < 1.0 for value in values)
        assert values == [unit_uniform(seed=9, index=i) for i in range(2_000)]

    def test_streams_are_independent(self):
        a = [unit_uniform(seed=9, index=i, stream=0) for i in range(100)]
        b = [unit_uniform(seed=9, index=i, stream=1) for i in range(100)]
        assert a != b

    def test_mean_is_half(self):
        values = [unit_uniform(seed=1, index=i) for i in range(20_000)]
        assert sum(values) / len(values) == pytest.approx(0.5, abs=0.01)


@pytest.mark.parametrize("process", ALL_PROCESSES, ids=PROCESS_IDS)
class TestCommonContracts:
    def test_deterministic_and_strictly_increasing(self, process):
        first = _take(process, 500)
        second = _take(process, 500)
        assert first == second
        assert all(b > a for a, b in zip(first, first[1:]))
        assert first[0] > 0.0

    def test_tail_contract_bit_exact(self, process):
        """times(k) is times(0) with the first k arrivals dropped — bit for
        bit, which is what makes segment replays resume exactly."""
        whole = _take(process, 200)
        for start in (1, 37, 150):
            assert _take(process, 200 - start, start_seq=start) == whole[start:]

    def test_scaled_rescales_the_mean_rate(self, process):
        assert process.scaled(2.0).mean_rate_rps == pytest.approx(
            2.0 * process.mean_rate_rps
        )
        assert process.scaled(1.0) == process

    def test_scaled_keeps_the_sample_path(self, process):
        """Doubling the rate halves every Poisson-style gap pathwise; at
        minimum the arrival order and count are preserved and every time
        shrinks (IEEE multiply monotonicity)."""
        base = _take(process, 300)
        fast = _take(process.scaled(2.0), 300)
        assert all(f < b for f, b in zip(fast, base))

    def test_scaled_validation(self, process):
        with pytest.raises(ValueError):
            process.scaled(0.0)
        with pytest.raises(ValueError):
            process.scaled(-1.0)

    def test_hashable_and_picklable(self, process):
        clone = pickle.loads(pickle.dumps(process))
        assert clone == process
        assert hash(clone) == hash(process)
        assert _take(clone, 50) == _take(process, 50)


class TestPoisson:
    def test_measured_rate_matches_nominal(self):
        process = PoissonArrivals(8_000.0, seed=5)
        times = _take(process, 20_000)
        measured = len(times) / times[-1] * 1e6
        assert measured == pytest.approx(8_000.0, rel=0.05)

    def test_interarrivals_are_exponential(self):
        """Moment check: an exponential's standard deviation equals its
        mean (at n=20k the ratio is within a few percent)."""
        times = _take(PoissonArrivals(8_000.0, seed=5), 20_000)
        gaps = [b - a for a, b in zip([0.0] + times, times)]
        mean = sum(gaps) / len(gaps)
        variance = sum((gap - mean) ** 2 for gap in gaps) / len(gaps)
        assert math.sqrt(variance) / mean == pytest.approx(1.0, rel=0.05)

    def test_rejects_nonpositive_rate(self):
        with pytest.raises(ValueError):
            PoissonArrivals(0.0)
        with pytest.raises(ValueError):
            PoissonArrivals(-5.0)


class TestBursty:
    def test_with_mean_hits_the_requested_rate(self):
        process = BurstyArrivals.with_mean(8_000.0, seed=5)
        assert process.mean_rate_rps == pytest.approx(8_000.0)
        times = _take(process, 40_000)
        measured = len(times) / times[-1] * 1e6
        assert measured == pytest.approx(8_000.0, rel=0.10)

    def test_bursts_are_faster_than_gaps(self):
        process = BurstyArrivals(
            base_rps=1_000.0, burst_rps=20_000.0, seed=5
        )
        assert process.burst_rps > process.base_rps
        # The request-weighted mean sits between the two phase rates.
        assert process.base_rps < process.mean_rate_rps < process.burst_rps

    def test_burstiness_raises_gap_variance_over_poisson(self):
        """Same mean rate, very different second moment: the squared
        coefficient of variation of the gaps must exceed the Poisson
        stream's (which is ~1)."""

        def scv(times):
            gaps = [b - a for a, b in zip([0.0] + times, times)]
            mean = sum(gaps) / len(gaps)
            variance = sum((gap - mean) ** 2 for gap in gaps) / len(gaps)
            return variance / mean**2

        bursty = scv(
            _take(
                BurstyArrivals.with_mean(
                    8_000.0,
                    burst_multiplier=10.0,
                    mean_gap_requests=200.0,
                    seed=5,
                ),
                20_000,
            )
        )
        poisson = scv(_take(PoissonArrivals(8_000.0, seed=5), 20_000))
        assert bursty > 1.5 * poisson


class TestDiurnal:
    def test_gap_lengths_follow_the_cycle(self):
        """Gaps drawn near the peak are systematically shorter than gaps
        drawn near the trough."""
        process = DiurnalArrivals(8_000.0, amplitude=0.8, period_s=0.5, seed=5)
        period_us = 0.5 * 1e6
        peak_gaps, trough_gaps = [], []
        previous = 0.0
        for t in _take(process, 30_000):
            phase = (previous % period_us) / period_us
            if 0.15 < phase < 0.35:
                peak_gaps.append(t - previous)
            elif 0.65 < phase < 0.85:
                trough_gaps.append(t - previous)
            previous = t
        assert peak_gaps and trough_gaps
        assert (sum(peak_gaps) / len(peak_gaps)) < 0.5 * (
            sum(trough_gaps) / len(trough_gaps)
        )

    def test_amplitude_validation(self):
        with pytest.raises(ValueError):
            DiurnalArrivals(1_000.0, amplitude=1.0)
        with pytest.raises(ValueError):
            DiurnalArrivals(1_000.0, amplitude=-0.1)


class TestBuildArrivals:
    @pytest.mark.parametrize("kind", ARRIVAL_KINDS)
    def test_builds_every_registered_kind(self, kind):
        process = build_arrivals(kind, 5_000.0, seed=7)
        assert process.mean_rate_rps == pytest.approx(5_000.0, rel=1e-6)
        times = _take(process, 10)
        assert len(times) == 10

    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown arrival kind"):
            build_arrivals("sawtooth", 5_000.0)
