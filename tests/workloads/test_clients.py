"""Tests for the DB2-like and MySQL-like client adapters."""

from __future__ import annotations

from collections import Counter

import pytest

from repro.trace.schema import RequestType
from repro.workloads.db2 import DB2Client
from repro.workloads.mysql import MySQLClient
from repro.workloads.tpcc import TPCCWorkload
from repro.workloads.tpch import TPCHWorkload


@pytest.fixture
def tpcc():
    return TPCCWorkload(total_pages=3_000, seed=11)


@pytest.fixture
def tpch():
    return TPCHWorkload(total_pages=3_000, seed=11, include_refresh=False, skip_queries=(18,))


class TestDB2Client:
    def test_emits_five_db2_hint_types(self, tpcc):
        client = DB2Client(database=tpcc.database, buffer_pages=300, seed=1)
        requests = client.run(tpcc.operations(transactions=100))
        assert requests
        for request in requests[:50]:
            assert request.hints.names == (
                "pool_id", "object_id", "object_type_id", "request_type", "buffer_priority",
            )

    def test_request_kind_matches_request_type_hint(self, tpcc):
        client = DB2Client(database=tpcc.database, buffer_pages=300, seed=1)
        for request in client.run(tpcc.operations(transactions=200)):
            rtype = request.hints.get("request_type")
            if request.is_read:
                assert rtype in RequestType.READ_VALUES
            else:
                assert rtype in RequestType.WRITE_VALUES

    def test_one_pool_per_layout_pool_id(self, tpcc):
        client = DB2Client(database=tpcc.database, buffer_pages=300, seed=1)
        assert set(client.pools()) == tpcc.database.pool_ids()

    def test_hints_identify_objects_consistently(self, tpcc):
        client = DB2Client(database=tpcc.database, buffer_pages=300, seed=1)
        requests = client.run(tpcc.operations(transactions=100))
        by_object: dict[int, set[int]] = {}
        for request in requests:
            by_object.setdefault(request.hints.get("object_id"), set()).add(request.page)
        # Pages of different objects never share an object-id hint.
        all_pages = [page for pages in by_object.values() for page in pages]
        assert len(all_pages) == len(set(all_pages))

    def test_client_id_namespaces_hints(self, tpcc):
        a = DB2Client(database=tpcc.database, buffer_pages=300, client_id="db2-a", seed=1)
        requests = a.run(tpcc.operations(transactions=5))
        assert all(r.hints.client_id == "db2-a" for r in requests)
        assert all(r.client_id == "db2-a" for r in requests)

    def test_smaller_buffer_emits_more_io(self):
        small_wl = TPCCWorkload(total_pages=3_000, seed=5)
        large_wl = TPCCWorkload(total_pages=3_000, seed=5)
        small = DB2Client(database=small_wl.database, buffer_pages=150, seed=1)
        large = DB2Client(database=large_wl.database, buffer_pages=1_500, seed=1)
        small_requests = small.run(small_wl.operations(transactions=400))
        large_requests = large.run(large_wl.operations(transactions=400))
        assert len(small_requests) > len(large_requests)
        assert small.first_tier_hit_ratio() < large.first_tier_hit_ratio()

    def test_collect_trace_packages_metadata(self, tpcc):
        client = DB2Client(database=tpcc.database, buffer_pages=300, seed=1)
        trace = client.collect_trace(
            tpcc.operations(transactions=500), target_requests=500, name="test-trace"
        )
        assert trace.name == "test-trace"
        assert len(trace) == 500
        assert trace.metadata["buffer_pages"] == 300
        assert 0.0 <= trace.metadata["first_tier_hit_ratio"] <= 1.0

    def test_target_request_truncation(self, tpcc):
        client = DB2Client(database=tpcc.database, buffer_pages=300, seed=1)
        requests = client.run(tpcc.operations(transactions=2_000), target_requests=250)
        assert len(requests) == 250

    def test_invalid_buffer_rejected(self, tpcc):
        with pytest.raises(ValueError):
            DB2Client(database=tpcc.database, buffer_pages=0)


class TestMySQLClient:
    def test_emits_four_mysql_hint_types(self, tpch):
        client = MySQLClient(database=tpch.database, buffer_pages=300, seed=1)
        requests = client.run(tpch.operations(queries=3))
        assert requests
        for request in requests[:50]:
            assert request.hints.names == ("thread_id", "request_type", "file_id", "fix_count")

    def test_request_type_restricted_to_three_values(self, tpch):
        client = MySQLClient(database=tpch.database, buffer_pages=200, seed=1)
        values = {r.hints.get("request_type") for r in client.run(tpch.operations(queries=10))}
        assert values <= set(RequestType.MYSQL_VALUES)

    def test_single_buffer_pool(self, tpch):
        client = MySQLClient(database=tpch.database, buffer_pages=200, seed=1)
        assert list(client.pools()) == [0]

    def test_table_and_its_index_share_file_id(self, tpch):
        client = MySQLClient(database=tpch.database, buffer_pages=200, seed=1)
        table = tpch.database["LINEITEM"]
        index = tpch.database["LINEITEM_PK"]
        assert client._file_ids[table.object_id] == client._file_ids[index.object_id]
        other = tpch.database["ORDERS"]
        assert client._file_ids[table.object_id] != client._file_ids[other.object_id]

    def test_thread_ids_within_domain(self, tpch):
        client = MySQLClient(database=tpch.database, buffer_pages=200, num_threads=5, seed=1)
        threads = {r.hints.get("thread_id") for r in client.run(tpch.operations(queries=12))}
        assert threads <= set(range(5))
        assert len(threads) > 1

    def test_fix_count_marks_recovery_writes(self, tpch):
        client = MySQLClient(database=tpch.database, buffer_pages=200, seed=1)
        requests = client.run(tpch.operations(queries=30))
        for request in requests:
            if request.hints.get("request_type") == RequestType.RECOVERY_WRITE:
                assert request.hints.get("fix_count") == 1
            else:
                assert request.hints.get("fix_count") == 0

    def test_invalid_num_threads(self, tpch):
        with pytest.raises(ValueError):
            MySQLClient(database=tpch.database, buffer_pages=200, num_threads=0)
