"""Tests for the synthetic database model and access primitives."""

from __future__ import annotations

import random

import pytest

from repro.workloads.access import AppendCursor, HotSpotSampler, PageAccess
from repro.workloads.dbmodel import DatabaseObject, ObjectType, SyntheticDatabase


class TestSyntheticDatabase:
    def test_objects_get_disjoint_page_ranges(self):
        db = SyntheticDatabase()
        a = db.add_object("A", pages=10)
        b = db.add_object("B", pages=5)
        assert set(a.pages()).isdisjoint(b.pages())
        assert db.total_pages == 15

    def test_object_ids_sequential(self):
        db = SyntheticDatabase()
        a = db.add_object("A", pages=1)
        b = db.add_object("B", pages=1)
        assert (a.object_id, b.object_id) == (0, 1)

    def test_duplicate_names_rejected(self):
        db = SyntheticDatabase()
        db.add_object("A", pages=1)
        with pytest.raises(ValueError):
            db.add_object("A", pages=1)

    def test_growth_appends_new_extent(self):
        db = SyntheticDatabase()
        a = db.add_object("A", pages=4)
        b = db.add_object("B", pages=4)
        db.grow(a, 3)
        assert a.page_count == 7
        # Grown pages do not collide with other objects.
        assert set(a.pages()).isdisjoint(b.pages())
        assert db.total_pages == 11

    def test_grow_foreign_object_rejected(self):
        db = SyntheticDatabase()
        other = SyntheticDatabase()
        obj = other.add_object("X", pages=1)
        with pytest.raises(KeyError):
            db.grow(obj, 1)

    def test_page_indexing_across_extents(self):
        db = SyntheticDatabase()
        a = db.add_object("A", pages=3)
        db.add_object("B", pages=3)
        db.grow(a, 2)
        pages = [a.page(i) for i in range(5)]
        assert pages == a.pages()
        assert len(set(pages)) == 5

    def test_page_index_out_of_range(self):
        db = SyntheticDatabase()
        a = db.add_object("A", pages=2)
        with pytest.raises(IndexError):
            a.page(2)
        with pytest.raises(IndexError):
            a.page(-1)

    def test_pool_queries(self):
        db = SyntheticDatabase()
        db.add_object("A", pages=1, pool_id=0)
        db.add_object("B", pages=1, pool_id=1)
        db.add_object("C", pages=1, pool_id=1)
        assert db.pool_ids() == {0, 1}
        assert [o.name for o in db.objects_in_pool(1)] == ["B", "C"]

    def test_describe(self):
        db = SyntheticDatabase()
        db.add_object("A", pages=2, object_type_id=ObjectType.INDEX)
        row = db.describe()[0]
        assert row["object"] == "A"
        assert row["type"] == "index"
        assert row["pages"] == 2

    def test_contains_and_getitem(self):
        db = SyntheticDatabase()
        db.add_object("A", pages=1)
        assert "A" in db and "B" not in db
        assert db["A"].name == "A"


class TestHotSpotSampler:
    def test_samples_within_object(self):
        db = SyntheticDatabase()
        obj = db.add_object("A", pages=100)
        sampler = HotSpotSampler()
        rng = random.Random(1)
        for _ in range(500):
            assert 0 <= sampler.sample(obj, rng) < 100

    def test_hot_fraction_receives_most_accesses(self):
        db = SyntheticDatabase()
        obj = db.add_object("A", pages=100)
        sampler = HotSpotSampler(hot_fraction=0.2, hot_probability=0.9)
        rng = random.Random(2)
        samples = [sampler.sample(obj, rng) for _ in range(5000)]
        hot = sum(1 for s in samples if s < 20)
        assert hot / len(samples) > 0.8

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            HotSpotSampler(hot_fraction=0.0)
        with pytest.raises(ValueError):
            HotSpotSampler(hot_probability=1.5)

    def test_empty_object_rejected(self):
        db = SyntheticDatabase()
        obj = db.add_object("A", pages=0)
        with pytest.raises(ValueError):
            HotSpotSampler().sample(obj, random.Random(1))


class TestAppendCursor:
    def test_appends_write_to_tail_page(self):
        db = SyntheticDatabase()
        obj = db.add_object("A", pages=1)
        cursor = AppendCursor(obj, rows_per_page=2)
        accesses = cursor.append(db, count=1)
        assert len(accesses) == 1
        assert accesses[0].write is True
        assert accesses[0].page_index == obj.last_page_index()

    def test_allocates_new_page_when_tail_full(self):
        db = SyntheticDatabase()
        obj = db.add_object("A", pages=1)
        cursor = AppendCursor(obj, rows_per_page=2)
        cursor.append(db, count=2)           # fills the existing tail page
        before = obj.page_count
        accesses = cursor.append(db, count=1)
        assert obj.page_count == before + 1
        assert accesses[0].is_new_page is True

    def test_growth_rate_matches_rows_per_page(self):
        db = SyntheticDatabase()
        obj = db.add_object("A", pages=1)
        cursor = AppendCursor(obj, rows_per_page=10)
        cursor.append(db, count=100)
        # 100 rows at 10 rows/page needs ~10 pages in total.
        assert 10 <= obj.page_count <= 12

    def test_invalid_rows_per_page(self):
        db = SyntheticDatabase()
        obj = db.add_object("A", pages=1)
        with pytest.raises(ValueError):
            AppendCursor(obj, rows_per_page=0)
