"""Tests for the first-tier buffer pool simulation."""

from __future__ import annotations

import random

import pytest

from repro.workloads.dbmodel import SyntheticDatabase
from repro.workloads.firsttier import FirstTierBufferPool, IOClass


def make_db(pages: int = 100):
    db = SyntheticDatabase()
    obj = db.add_object("T", pages=pages)
    return db, obj


class TestBasicCaching:
    def test_miss_emits_regular_read(self):
        _, obj = make_db()
        pool = FirstTierBufferPool(capacity=10, checkpoint_interval=0)
        ios = pool.access(obj, 0)
        assert [io.io_class for io in ios] == [IOClass.REGULAR_READ]
        assert ios[0].page == obj.page(0)

    def test_hit_emits_nothing(self):
        _, obj = make_db()
        pool = FirstTierBufferPool(capacity=10, checkpoint_interval=0)
        pool.access(obj, 0)
        assert pool.access(obj, 0) == []
        assert pool.hit_ratio == pytest.approx(0.5)

    def test_new_page_write_needs_no_read(self):
        _, obj = make_db()
        pool = FirstTierBufferPool(capacity=10, checkpoint_interval=0)
        ios = pool.access(obj, 0, write=True, is_new_page=True)
        assert ios == []
        assert obj.page(0) in pool

    def test_capacity_respected(self):
        _, obj = make_db(100)
        pool = FirstTierBufferPool(capacity=8, checkpoint_interval=0)
        for index in range(50):
            pool.access(obj, index)
        assert len(pool) <= 8

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            FirstTierBufferPool(capacity=0)
        with pytest.raises(ValueError):
            FirstTierBufferPool(capacity=5, cleaner_interval=0)
        with pytest.raises(ValueError):
            FirstTierBufferPool(capacity=5, scan_threshold_fraction=0.0)


class TestWriteHints:
    def test_clean_eviction_is_silent(self):
        _, obj = make_db(100)
        pool = FirstTierBufferPool(capacity=4, cleaner_interval=10_000, checkpoint_interval=0)
        ios = []
        for index in range(10):
            ios.extend(pool.access(obj, index))      # clean reads only
        assert all(io.io_class is IOClass.REGULAR_READ for io in ios)

    def test_dirty_eviction_emits_synchronous_write(self):
        _, obj = make_db(100)
        pool = FirstTierBufferPool(capacity=2, cleaner_interval=10_000, checkpoint_interval=0)
        pool.access(obj, 0, write=True)
        pool.access(obj, 1)
        ios = pool.access(obj, 2)
        classes = [io.io_class for io in ios]
        assert IOClass.SYNCHRONOUS_WRITE in classes
        sync = next(io for io in ios if io.io_class is IOClass.SYNCHRONOUS_WRITE)
        assert sync.page == obj.page(0)

    def test_cleaner_emits_replacement_writes_for_cold_dirty_pages(self):
        _, obj = make_db(100)
        pool = FirstTierBufferPool(
            capacity=20, cleaner_interval=5, cleaner_batch=4, checkpoint_interval=0
        )
        ios = []
        for index in range(10):
            ios.extend(pool.access(obj, index, write=True))
        replacement = [io for io in ios if io.io_class is IOClass.REPLACEMENT_WRITE]
        assert replacement, "the page cleaner should have flushed some dirty pages"
        # Cleaned pages stay resident in the pool.
        for io in replacement:
            assert io.page in pool

    def test_cleaned_page_not_rewritten_on_eviction(self):
        _, obj = make_db(100)
        pool = FirstTierBufferPool(
            capacity=4, cleaner_interval=1, cleaner_batch=8, checkpoint_interval=0
        )
        ios = []
        for index in range(12):
            ios.extend(pool.access(obj, index, write=True))
        # Every dirty page is cleaned immediately (interval 1, generous batch),
        # so no synchronous writes should ever be needed.
        assert not [io for io in ios if io.io_class is IOClass.SYNCHRONOUS_WRITE]

    def test_checkpoint_emits_recovery_writes_for_hot_dirty_pages(self):
        _, obj = make_db(100)
        pool = FirstTierBufferPool(
            capacity=50, cleaner_interval=10_000, checkpoint_interval=10, checkpoint_batch=8
        )
        ios = []
        for round_ in range(4):
            for index in range(5):
                ios.extend(pool.access(obj, index, write=True))
        recovery = [io for io in ios if io.io_class is IOClass.RECOVERY_WRITE]
        assert recovery
        for io in recovery:
            assert io.page in pool            # checkpointed pages stay cached

    def test_flush_all_writes_remaining_dirty_pages(self):
        _, obj = make_db()
        pool = FirstTierBufferPool(capacity=10, cleaner_interval=10_000, checkpoint_interval=0)
        pool.access(obj, 0, write=True)
        pool.access(obj, 1, write=True)
        ios = pool.flush_all()
        assert len(ios) == 2
        assert all(io.io_class is IOClass.RECOVERY_WRITE for io in ios)
        assert pool.dirty_pages() == 0


class TestScans:
    def test_scan_emits_prefetch_reads(self):
        _, obj = make_db(50)
        pool = FirstTierBufferPool(capacity=100, checkpoint_interval=0)
        ios = pool.scan(obj, 0, 10)
        assert len(ios) == 10
        assert all(io.io_class is IOClass.PREFETCH_READ for io in ios)

    def test_small_object_scan_is_cached(self):
        # Objects below the scan threshold are kept resident: the second scan
        # is absorbed entirely by the first tier.
        _, obj = make_db(20)
        pool = FirstTierBufferPool(capacity=100, checkpoint_interval=0)
        first = pool.scan(obj, 0, 20)
        second = pool.scan(obj, 0, 20)
        assert len(first) == 20
        assert second == []

    def test_large_object_scan_does_not_flush_working_set(self):
        db = SyntheticDatabase()
        hot = db.add_object("HOT", pages=10)
        big = db.add_object("BIG", pages=400)
        pool = FirstTierBufferPool(capacity=40, checkpoint_interval=0, scan_threshold_fraction=0.5)
        for index in range(10):
            pool.access(hot, index)
        pool.scan(big, 0, 400)
        # The hot pages must still be resident after the big scan.
        resident = sum(1 for index in range(10) if hot.page(index) in pool)
        assert resident >= 8

    def test_large_object_rescan_reaches_server_again(self):
        db = SyntheticDatabase()
        big = db.add_object("BIG", pages=200)
        pool = FirstTierBufferPool(capacity=50, checkpoint_interval=0)
        first = pool.scan(big, 0, 200)
        second = pool.scan(big, 0, 200)
        # Scan-resistant handling means the pool retains almost none of the
        # scan, so the re-scan misses (and reaches the storage server) again.
        assert len(second) >= 150
        assert len(first) == 200

    def test_scan_clipped_to_object_end(self):
        _, obj = make_db(10)
        pool = FirstTierBufferPool(capacity=100, checkpoint_interval=0)
        ios = pool.scan(obj, 5, 50)
        assert len(ios) == 5

    def test_negative_length_rejected(self):
        _, obj = make_db(10)
        pool = FirstTierBufferPool(capacity=10)
        with pytest.raises(ValueError):
            pool.scan(obj, 0, -1)
