"""Tests for the non-stationary phased workload subsystem."""

from __future__ import annotations

import pickle

import pytest

from repro.trace.cache import TraceSpec, default_trace_cache
from repro.workloads.phased import (
    PHASE_PLANS,
    Phase,
    PhaseClient,
    PhasedTraceStream,
    PhasePlan,
    build_phase_plan,
    default_page_stride,
    phased_trace,
)
from repro.workloads.standard import StandardTraceStream


def tiny_plan(total: int = 900) -> PhasePlan:
    return build_phase_plan("tenant", total, seed=5)


class TestPlanModel:
    def test_named_plans_build_and_preserve_totals(self):
        for name in PHASE_PLANS:
            plan = build_phase_plan(name, 1_000, seed=3)
            assert plan.name == name
            assert plan.total_requests == 1_000

    def test_unknown_plan_rejected(self):
        with pytest.raises(KeyError, match="unknown phase plan"):
            build_phase_plan("nope", 1_000)

    def test_unknown_trace_rejected(self):
        with pytest.raises(KeyError, match="unknown standard traces"):
            PhasePlan("bad", (Phase("p", 10, (PhaseClient("NOPE"),)),))

    def test_empty_and_invalid_phases_rejected(self):
        with pytest.raises(ValueError, match="at least one phase"):
            PhasePlan("empty", ())
        with pytest.raises(ValueError, match="requests must be >= 1"):
            Phase("p", 0, (PhaseClient("DB2_C60"),))
        with pytest.raises(ValueError, match="at least one client"):
            Phase("p", 10, ())

    def test_offsets_and_phase_lookup(self):
        plan = tiny_plan(900)
        assert plan.phase_offsets() == [0, 300, 600]
        assert plan.shift_offsets() == [300, 600]
        assert plan.phase_at(0).name == "solo"
        assert plan.phase_at(299).name == "solo"
        assert plan.phase_at(300).name == "shared"
        assert plan.phase_at(899).name == "solo-again"
        assert plan.phase_at(10_000).name == "solo-again"

    def test_distinct_clients_first_appearance_order(self):
        plan = tiny_plan()
        keys = [client.key() for client in plan.distinct_clients()]
        assert len(keys) == len(set(keys)) == 2
        assert keys[0][0] == "DB2_C60"  # the resident appears first

    def test_plan_is_hashable_and_picklable(self):
        plan = tiny_plan()
        assert pickle.loads(pickle.dumps(plan)) == plan
        assert hash(tiny_plan()) == hash(plan)


class TestPhasedStream:
    def test_deterministic(self):
        plan = tiny_plan()
        assert phased_trace(plan).requests() == phased_trace(plan).requests()

    def test_single_use(self):
        stream = PhasedTraceStream(tiny_plan())
        list(stream)
        with pytest.raises(RuntimeError, match="single-use"):
            list(stream)

    def test_emits_exactly_the_plan_length(self):
        plan = tiny_plan(901)  # uneven split exercises the remainder logic
        assert len(phased_trace(plan)) == 901

    def test_solo_plan_matches_standard_stream(self):
        """A one-phase, one-client plan is exactly the standard stream."""
        plan = PhasePlan(
            "solo", (Phase("only", 700, (PhaseClient("DB2_C60", 7, "x"),)),)
        )
        assert list(PhasedTraceStream(plan)) == list(
            StandardTraceStream("DB2_C60", seed=7, target_requests=700, client_id="x")
        )

    def test_tenant_pages_disjoint_and_round_robin(self):
        plan = tiny_plan(900)
        stream = PhasedTraceStream(plan)
        stride = stream.page_stride
        requests = list(stream)
        ranges = {r.client_id: set() for r in requests}
        for request in requests:
            ranges[request.client_id].add(request.page // stride)
        assert all(len(slots) == 1 for slots in ranges.values())
        assert len({next(iter(s)) for s in ranges.values()}) == len(ranges)
        # The shared phase alternates tenants request by request.
        shared = requests[300:600]
        assert [r.client_id for r in shared[:4]] == [
            shared[0].client_id,
            shared[1].client_id,
            shared[0].client_id,
            shared[1].client_id,
        ]
        assert shared[0].client_id != shared[1].client_id

    def test_resident_stream_continues_across_phases(self):
        """A tenant spanning phases continues; it does not restart."""
        plan = tiny_plan(900)
        resident = plan.phases[0].clients[0]
        requests = [
            r
            for r in PhasedTraceStream(plan)
            if r.client_id == resident.resolved_client_id()
        ]
        solo = list(
            StandardTraceStream(
                resident.trace,
                seed=resident.seed,
                target_requests=len(requests),
                client_id=resident.resolved_client_id(),
            )
        )
        assert requests == solo

    def test_page_overflow_raises_instead_of_aliasing(self):
        plan = tiny_plan()
        with pytest.raises(ValueError, match="overflows the per-tenant page stride"):
            list(PhasedTraceStream(plan, page_stride=10))

    def test_metadata_shape(self):
        import json

        plan = tiny_plan(900)
        stream = PhasedTraceStream(plan)
        list(stream)
        metadata = stream.metadata()
        assert metadata["phase_plan"] == "tenant"
        assert metadata["phase_offsets"] == [0, 300, 600]
        assert metadata["total_requests"] == 900
        assert len(metadata["tenants"]) == 2
        assert all("first_tier_hit_ratio" in t for t in metadata["tenants"])
        assert metadata["page_stride"] == default_page_stride(plan)
        json.dumps(metadata)  # must survive the binary writer's JSON META

    def test_churn_replacement_is_a_distinct_client(self):
        plan = build_phase_plan("churn", 600, seed=5)
        clients = {r.client_id for r in PhasedTraceStream(plan)}
        assert len(clients) == 2


class TestPhasedTraceCache:
    def test_spec_round_trips_through_the_cache(self):
        plan = tiny_plan(600)
        spec = TraceSpec.for_plan(plan)
        spec.ensure()
        streamed = spec.open()
        mem = phased_trace(plan)
        assert list(streamed.iter_requests()) == mem.requests()
        assert streamed.metadata == mem.metadata

    def test_cache_key_hashes_the_schedule(self):
        cache = default_trace_cache()
        base = TraceSpec.for_plan(tiny_plan(600))
        same = TraceSpec.for_plan(tiny_plan(600))
        other_total = TraceSpec.for_plan(tiny_plan(660))
        other_seed = TraceSpec.for_plan(build_phase_plan("tenant", 600, seed=6))
        other_plan = TraceSpec.for_plan(build_phase_plan("churn", 600, seed=5))
        assert cache.path_for(base) == cache.path_for(same)
        distinct = {
            cache.path_for(spec)
            for spec in (base, other_total, other_seed, other_plan)
        }
        assert len(distinct) == 4

    def test_spec_is_picklable_and_hashable(self):
        spec = TraceSpec.for_plan(tiny_plan(600))
        clone = pickle.loads(pickle.dumps(spec))
        assert clone == spec and hash(clone) == hash(spec)
