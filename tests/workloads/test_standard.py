"""Tests for the standard (Figure 5) trace configurations."""

from __future__ import annotations

import pytest

from repro.trace.schema import RequestType
from repro.workloads.standard import (
    STANDARD_TRACES,
    StandardTraceConfig,
    clic_window_for,
    server_cache_sizes,
    standard_trace,
)


class TestConfigurations:
    def test_all_eight_paper_traces_present(self):
        assert set(STANDARD_TRACES) == {
            "DB2_C60", "DB2_C300", "DB2_C540",
            "DB2_H80", "DB2_H400", "DB2_H720",
            "MY_H65", "MY_H98",
        }

    def test_scaled_ratios_match_paper_ratios(self):
        for config in STANDARD_TRACES.values():
            paper_ratio = config.paper_buffer_pages / config.paper_database_pages
            scaled_ratio = config.buffer_pages / config.database_pages
            assert scaled_ratio == pytest.approx(paper_ratio, rel=0.05)

    def test_cache_sweeps_defined(self):
        for name in STANDARD_TRACES:
            sizes = server_cache_sizes(name)
            assert len(sizes) >= 3
            assert sizes == sorted(sizes)

    def test_mysql_configs_skip_q18_and_refreshes(self):
        for name in ("MY_H65", "MY_H98"):
            config = STANDARD_TRACES[name]
            assert 18 in config.tpch_skip_queries
            assert config.tpch_include_refresh is False

    def test_unknown_trace_rejected(self):
        with pytest.raises(KeyError):
            standard_trace("NOPE", target_requests=10)
        with pytest.raises(KeyError):
            server_cache_sizes("NOPE")

    def test_tpcc_configs_warm_up_past_large_buffers(self):
        c540 = STANDARD_TRACES["DB2_C540"]
        assert c540.warmup_page_target() > c540.buffer_pages
        h720 = STANDARD_TRACES["DB2_H720"]
        assert h720.warmup_page_target() == 0

    def test_clic_window_scales_with_trace_length(self):
        assert clic_window_for(600_000) > clic_window_for(60_000)
        assert clic_window_for(100) >= 2_000


class TestTraceGeneration:
    def test_db2_trace_carries_db2_hints(self):
        trace = standard_trace("DB2_C60", seed=3, target_requests=2_000)
        assert len(trace) == 2_000
        summary = trace.summary()
        assert summary.distinct_hint_sets > 5
        assert trace[0].hints.names[0] == "pool_id"

    def test_mysql_trace_carries_mysql_hints(self):
        trace = standard_trace("MY_H65", seed=3, target_requests=2_000)
        assert trace[0].hints.names == ("thread_id", "request_type", "file_id", "fix_count")

    def test_deterministic_for_fixed_seed(self):
        a = standard_trace("DB2_C60", seed=7, target_requests=1_000)
        b = standard_trace("DB2_C60", seed=7, target_requests=1_000)
        assert [(r.page, r.kind, r.hints.key()) for r in a] == [
            (r.page, r.kind, r.hints.key()) for r in b
        ]

    def test_different_seeds_differ(self):
        a = standard_trace("DB2_C60", seed=1, target_requests=1_000)
        b = standard_trace("DB2_C60", seed=2, target_requests=1_000)
        assert [r.page for r in a] != [r.page for r in b]

    def test_metadata_records_configuration(self):
        trace = standard_trace("DB2_C60", seed=3, target_requests=1_000)
        assert trace.metadata["config"] == "DB2_C60"
        assert trace.metadata["buffer_pages"] == 1_200
        assert trace.metadata["paper_buffer_pages"] == 60_000

    def test_client_id_override_for_multi_client_experiments(self):
        trace = standard_trace("DB2_C60", seed=3, target_requests=500, client_id="tenant-1")
        assert all(r.client_id == "tenant-1" for r in trace)

    def test_write_hints_present_in_tpcc_trace(self):
        trace = standard_trace("DB2_C60", seed=5, target_requests=4_000)
        types = {r.hints.get("request_type") for r in trace}
        assert RequestType.REPLACEMENT_WRITE in types
        assert RequestType.READ in types


class TestWarmupTruncation:
    """The warm-up safety cap must be loud: warning + metadata record."""

    def test_truncation_warns_and_lands_in_metadata(self, monkeypatch):
        from repro.workloads import standard as standard_module

        monkeypatch.setattr(standard_module, "_MAX_WARMUP_TRANSACTIONS", 3)
        with pytest.warns(RuntimeWarning, match="safety cap"):
            trace = standard_trace("DB2_C540", seed=3, target_requests=200)
        assert trace.metadata["warmup_truncated"] is True
        assert trace.metadata["warmup_transactions"] == 3
        assert (
            trace.metadata["warmup_pages_reached"]
            < trace.metadata["warmup_page_target"]
        )

    def test_normal_warmup_is_silent_and_unrecorded(self):
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            trace = standard_trace("DB2_C60", seed=3, target_requests=200)
        assert "warmup_truncated" not in trace.metadata

    def test_streaming_metadata_carries_truncation_record(self, monkeypatch):
        from repro.workloads import standard as standard_module
        from repro.workloads.standard import StandardTraceStream

        monkeypatch.setattr(standard_module, "_MAX_WARMUP_TRANSACTIONS", 3)
        stream = StandardTraceStream("DB2_C540", seed=3, target_requests=200)
        assert "warmup_truncated" not in stream.metadata()  # not yet run
        with pytest.warns(RuntimeWarning, match="safety cap"):
            list(stream)
        assert stream.metadata()["warmup_truncated"] is True
