"""Tests for the TPC-C-like and TPC-H-like workload models."""

from __future__ import annotations

from collections import Counter

import pytest

from repro.workloads.access import PageAccess, ScanAccess
from repro.workloads.tpcc import TPCC_TRANSACTION_MIX, TPCCWorkload
from repro.workloads.tpch import TPCH_QUERY_TEMPLATES, TPCHWorkload


class TestTPCCWorkload:
    def test_transaction_mix_sums_to_one(self):
        assert sum(TPCC_TRANSACTION_MIX.values()) == pytest.approx(1.0)

    def test_layout_matches_requested_size(self):
        workload = TPCCWorkload(total_pages=12_000, seed=1)
        assert 0.9 * 12_000 <= workload.database.total_pages <= 1.1 * 12_000

    def test_layout_has_tables_and_indexes_in_two_pools(self):
        workload = TPCCWorkload(total_pages=5_000, seed=1)
        assert workload.database.pool_ids() == {0, 1}
        names = {obj.name for obj in workload.database.objects()}
        assert {"STOCK", "CUSTOMER", "ORDER_LINE", "STOCK_PK"} <= names
        # Figure 2 reports 21 distinct object ids for the TPC-C trace.
        assert workload.database.object_count() >= 20

    def test_operations_reference_valid_pages(self):
        workload = TPCCWorkload(total_pages=3_000, seed=2)
        for op in workload.operations(transactions=50):
            assert isinstance(op, PageAccess)
            assert 0 <= op.page_index < op.obj.page_count

    def test_database_grows_with_transactions(self):
        workload = TPCCWorkload(total_pages=3_000, seed=3)
        before = workload.database.total_pages
        list(workload.operations(transactions=300))
        assert workload.database.total_pages > before

    def test_deterministic_given_seed(self):
        a = TPCCWorkload(total_pages=3_000, seed=9)
        b = TPCCWorkload(total_pages=3_000, seed=9)
        ops_a = [(op.obj.name, op.page_index, op.write) for op in a.operations(20)]
        ops_b = [(op.obj.name, op.page_index, op.write) for op in b.operations(20)]
        assert ops_a == ops_b

    def test_different_seeds_differ(self):
        a = TPCCWorkload(total_pages=3_000, seed=1)
        b = TPCCWorkload(total_pages=3_000, seed=2)
        ops_a = [(op.obj.name, op.page_index) for op in a.operations(20)]
        ops_b = [(op.obj.name, op.page_index) for op in b.operations(20)]
        assert ops_a != ops_b

    def test_mix_of_reads_and_writes(self):
        workload = TPCCWorkload(total_pages=3_000, seed=4)
        ops = list(workload.operations(transactions=200))
        writes = sum(1 for op in ops if op.write)
        assert 0 < writes < len(ops)

    def test_transaction_counter(self):
        workload = TPCCWorkload(total_pages=3_000, seed=5)
        list(workload.operations(transactions=7))
        assert workload.transactions_generated == 7

    def test_too_small_database_rejected(self):
        with pytest.raises(ValueError):
            TPCCWorkload(total_pages=50)

    def test_delivery_backlog_validated(self):
        with pytest.raises(ValueError):
            TPCCWorkload(total_pages=3_000, delivery_backlog=-1)


class TestTPCHWorkload:
    def test_all_22_query_templates_defined(self):
        assert set(TPCH_QUERY_TEMPLATES) == set(range(1, 23))

    def test_layout_matches_requested_size(self):
        workload = TPCHWorkload(total_pages=16_000, seed=1)
        assert 0.9 * 16_000 <= workload.database.total_pages <= 1.1 * 16_000

    def test_lineitem_is_largest_table(self):
        workload = TPCHWorkload(total_pages=8_000, seed=1)
        sizes = {obj.name: obj.page_count for obj in workload.database.objects()}
        assert sizes["LINEITEM"] == max(sizes.values())

    def test_operations_include_scans_and_lookups(self):
        workload = TPCHWorkload(total_pages=4_000, seed=2)
        ops = list(workload.operations(queries=5))
        assert any(isinstance(op, ScanAccess) for op in ops)
        assert any(isinstance(op, PageAccess) for op in ops)

    def test_scan_ranges_are_stable_across_rounds(self):
        # Disable refreshes so two consecutive rounds contain exactly the same
        # 22 queries in the same order.
        workload = TPCHWorkload(total_pages=4_000, seed=3, include_refresh=False)
        first_round = [
            (op.obj.name, op.start_index, op.length)
            for op in workload.operations(queries=22)
            if isinstance(op, ScanAccess)
        ]
        second_round = [
            (op.obj.name, op.start_index, op.length)
            for op in workload.operations(queries=22)
            if isinstance(op, ScanAccess)
        ]
        assert first_round == second_round

    def test_skip_queries(self):
        workload = TPCHWorkload(total_pages=4_000, skip_queries=(18,), seed=1)
        assert 18 not in workload._queries
        assert len(workload._queries) == 21

    def test_all_queries_skipped_rejected(self):
        with pytest.raises(ValueError):
            TPCHWorkload(total_pages=4_000, skip_queries=tuple(range(1, 23)))

    def test_refresh_functions_add_writes(self):
        with_refresh = TPCHWorkload(total_pages=4_000, include_refresh=True, seed=5)
        ops = list(with_refresh.operations(queries=23))
        writes = [op for op in ops if isinstance(op, PageAccess) and op.write]
        assert writes

    def test_no_refresh_for_mysql_style_runs(self):
        workload = TPCHWorkload(total_pages=4_000, include_refresh=False, skip_queries=(18,), seed=5)
        # One full round of queries: only TEMP spills may write.
        ops = list(workload.operations(queries=21))
        writers = {op.obj.name for op in ops if isinstance(op, PageAccess) and op.write}
        assert writers <= {"TEMP_SORT"}

    def test_scans_within_bounds(self):
        workload = TPCHWorkload(total_pages=4_000, seed=6)
        for op in workload.operations(queries=22):
            if isinstance(op, ScanAccess):
                assert op.start_index >= 0
                assert op.start_index < op.obj.page_count
