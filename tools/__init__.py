"""Repository maintenance tools.

This package marker exists so ``python -m tools.lintkit`` resolves from the
repository root; the standalone scripts (``regen_golden.py``,
``check_links.py``, ...) keep working as plain scripts.
"""
