#!/usr/bin/env python3
"""Markdown link checker for the repository's docs (no dependencies).

Scans the given markdown files (default: README.md and docs/*.md) for
inline links/images ``[text](target)`` and verifies that every *relative*
target resolves to an existing file or directory, and that any fragment on
a markdown target (``file.md#section``) matches a heading in that file.
External links (``http(s)://``, ``mailto:``) are not fetched.

Usage::

    python tools/check_links.py [FILE.md ...]

Exits non-zero listing every broken link.  Run by the CI docs job.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

# Inline links/images; deliberately simple — fenced code blocks are stripped
# before matching so `[x](y)` inside code examples is ignored.
_LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
_FENCE = re.compile(r"```.*?```", re.DOTALL)
_INLINE_CODE = re.compile(r"`[^`\n]*`")
_HEADING = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)


def heading_anchors(markdown: str) -> set[str]:
    """GitHub-style anchors for every heading in *markdown*."""
    anchors = set()
    for heading in _HEADING.findall(_FENCE.sub("", markdown)):
        text = re.sub(r"[`*_]", "", heading.strip().lower())
        text = re.sub(r"[^\w\- ]", "", text)
        anchors.add(text.replace(" ", "-"))
    return anchors


def check_file(path: Path) -> list[str]:
    problems = []
    text = path.read_text(encoding="utf-8")
    scannable = _INLINE_CODE.sub("", _FENCE.sub("", text))
    for target in _LINK.findall(scannable):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        base, _, fragment = target.partition("#")
        if not base:  # same-file anchor
            resolved = path
        else:
            resolved = (path.parent / base).resolve()
            if not resolved.exists():
                problems.append(f"{path}: broken link -> {target}")
                continue
        if fragment and resolved.suffix == ".md":
            if fragment.lower() not in heading_anchors(resolved.read_text(encoding="utf-8")):
                problems.append(f"{path}: missing anchor -> {target}")
    return problems


def main(argv: list[str]) -> int:
    if argv:
        files = [Path(arg) for arg in argv]
    else:
        files = [REPO_ROOT / "README.md", *sorted((REPO_ROOT / "docs").glob("*.md"))]
    problems = []
    for path in files:
        if not path.exists():
            problems.append(f"{path}: file not found")
            continue
        problems.extend(check_file(path))
    for problem in problems:
        print(problem, file=sys.stderr)
    print(f"checked {len(files)} file(s): {len(problems)} problem(s)")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
