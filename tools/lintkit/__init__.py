"""lintkit — the repository's determinism & kernel-contract static analyzer.

The reproduction's load-bearing guarantees — bit-identical ``jobs=1 ==
jobs=N`` replay, the policy-kernel/observer contract, the exact
integer-nanosecond queueing clock — are laws of the *whole* codebase, not of
the handful of configurations the runtime tests happen to sample.  lintkit
enforces the machine-checkable part of those laws on every file, at CI time:

* **no-nondeterminism** — no wall-clock reads, no unseeded randomness, no
  set/frozenset iteration flowing into ordering-sensitive sinks;
* **kernel-contract** — registered cache policies implement
  ``access() -> AccessOutcome``, keep their snapshot field lists coherent,
  and perform no I/O or request mutation;
* **observer-purity** — replay observers mutate only their own state and
  stay mergeable;
* **int-clock-safety** — nothing float-valued feeds an integer-nanosecond
  (``*_ns``) clock accumulator;
* **registry-completeness** — experiments have golden fixtures, the
  invariant suite derives from the policy registry, policy classes are
  registered;
* **typing-gate** — full parameter/return annotations in the strictly
  typed packages.

Run it from the repository root::

    python -m tools.lintkit src/repro

See ``docs/static-analysis.md`` for the rule catalogue and the suppression
syntax (``# lintkit: ignore[rule-id] <reason>``).
"""

from tools.lintkit.core import (
    LintConfig,
    Project,
    RunResult,
    Violation,
    run_paths,
)
from tools.lintkit.rules import ALL_RULES, rule_catalogue

__all__ = [
    "ALL_RULES",
    "LintConfig",
    "Project",
    "RunResult",
    "Violation",
    "rule_catalogue",
    "run_paths",
]
