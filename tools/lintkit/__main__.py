"""Command-line entry point: ``python -m tools.lintkit [paths...]``.

Exit status: 0 when clean, 1 when violations were found, 2 on usage or
parse errors.  Run from the repository root so the cross-file rules find
the registries and golden fixtures.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from tools.lintkit.core import LintConfig, run_paths
from tools.lintkit.rules import ALL_RULES, rule_catalogue


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m tools.lintkit",
        description="Determinism & kernel-contract static analysis "
        "(see docs/static-analysis.md).",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to analyze (default: src/repro)",
    )
    parser.add_argument(
        "--select",
        help="comma-separated rule ids to run (default: all rules)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalogue and exit"
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text", help="output format"
    )
    parser.add_argument(
        "--show-suppressed",
        action="store_true",
        help="also print violations silenced by documented suppressions",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        width = max(len(rule_id) for rule_id, _ in rule_catalogue())
        for rule_id, summary in rule_catalogue():
            print(f"{rule_id:<{width}}  {summary}")
        return 0

    paths = [Path(p) for p in args.paths]
    for path in paths:
        if not path.exists():
            print(f"error: no such path: {path}", file=sys.stderr)
            return 2

    select = args.select.split(",") if args.select else None
    try:
        result = run_paths(paths, LintConfig(root=Path.cwd()), select=select)
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2
    except SyntaxError as exc:
        print(f"error: cannot parse {exc.filename}:{exc.lineno}: {exc.msg}", file=sys.stderr)
        return 2

    if args.format == "json":
        print(
            json.dumps(
                {
                    "files": result.files,
                    "rules": len(select) if select else len(ALL_RULES),
                    "violations": [vars(v) for v in result.violations],
                    "suppressed": [
                        {**vars(v), "reason": s.reason}
                        for v, s in result.suppressed
                    ],
                },
                indent=2,
            )
        )
    else:
        for violation in result.violations:
            print(violation.render())
        if args.show_suppressed:
            for violation, suppression in result.suppressed:
                print(f"{violation.render()}  [suppressed: {suppression.reason}]")
        status = "clean" if result.ok else f"{len(result.violations)} violation(s)"
        print(
            f"lintkit: {result.files} file(s), "
            f"{len(select) if select else len(ALL_RULES)} rule(s), {status}, "
            f"{len(result.suppressed)} documented suppression(s)",
            file=sys.stderr,
        )
    return 0 if result.ok else 1


if __name__ == "__main__":
    sys.exit(main())
