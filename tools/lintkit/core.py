"""lintkit core: file loading, rule driving, suppressions, reporting.

The engine parses every analyzed file once into an :mod:`ast` tree, wraps it
in a :class:`FileContext`, and assembles the set into a :class:`Project`
(module index + class index) so cross-file rules — the kernel contract, the
registry-completeness checks — can resolve imports and base classes without
importing any of the code under analysis.  Rules never execute analyzed
code; everything is syntactic.

Two rule kinds exist:

* :class:`FileRule` — ``check_file(ctx, config)`` runs once per file;
* :class:`ProjectRule` — ``check_project(project, config)`` runs once per
  analysis set, for rules that need to see several files at once.

Suppressions are per-line comments::

    risky_call()  # lintkit: ignore[rule-id] why this one is safe

A suppression must carry a reason; a bare ``ignore[rule-id]`` is itself
reported (rule id ``suppression-reason``).  Unused suppressions are also
reported (``suppression-unused``) so stale ignores cannot accumulate.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Sequence

__all__ = [
    "FileContext",
    "FileRule",
    "LintConfig",
    "Project",
    "ProjectRule",
    "Rule",
    "RunResult",
    "Suppression",
    "Violation",
    "dotted_name",
    "run_paths",
]


# --------------------------------------------------------------------- model
@dataclass(frozen=True)
class Violation:
    """One rule finding, anchored to a file and line."""

    path: str
    line: int
    rule_id: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule_id}] {self.message}"


@dataclass(frozen=True)
class Suppression:
    """A parsed ``# lintkit: ignore[rule-id] reason`` comment."""

    path: str
    line: int
    rule_id: str
    reason: str


@dataclass
class LintConfig:
    """Repository layout the cross-file rules check against.

    The defaults describe this repository (paths relative to ``root``);
    tests point them into fixture trees instead.
    """

    #: Repository root all relative paths resolve against.
    root: Path = field(default_factory=Path.cwd)
    #: Module (dotted) prefixes held to the typing gate.
    strict_typing_packages: tuple[str, ...] = (
        "repro.cache",
        "repro.simulation",
        "repro.trace",
    )
    #: Path fragments exempt from every rule (measurement/tooling code may
    #: read clocks; tests deliberately exercise bad inputs).
    exempt_parts: tuple[str, ...] = ("benchmarks", "tools", "tests", "examples")
    #: The policy registry module (kernel-contract + registry rules).
    policy_registry_module: str = "repro.cache.registry"
    #: The experiment registry module (registry-golden rule).
    experiment_registry_module: str = "repro.experiments.registry"
    #: Directory of golden experiment fixtures, relative to ``root``.
    golden_dir: str = "tests/experiments/golden"
    #: The registry-derived invariant suite, relative to ``root``.
    invariant_suite: str = "tests/test_registry_invariants.py"
    #: The scalar==batch equivalence suite (batch-kernel-parity rule).
    batch_parity_suite: str = "tests/cache/test_batch_parity.py"

    def is_exempt(self, path: Path) -> bool:
        return any(part in self.exempt_parts for part in path.parts)


class FileContext:
    """One parsed source file."""

    def __init__(self, path: Path, root: Path):
        path = path.resolve()
        root = root.resolve()
        self.path = path
        try:
            self.relpath = str(path.relative_to(root))
        except ValueError:
            self.relpath = str(path)
        self.source = path.read_text(encoding="utf-8")
        self.tree = ast.parse(self.source, filename=str(path))
        self.module = _module_name(path, root)

    def violation(self, node: ast.AST | int, rule_id: str, message: str) -> Violation:
        line = node if isinstance(node, int) else getattr(node, "lineno", 1)
        return Violation(self.relpath, line, rule_id, message)


def _module_name(path: Path, root: Path) -> str:
    """Dotted module name for *path*; ``src/`` layout is stripped."""
    try:
        rel = path.resolve().relative_to(root.resolve())
    except ValueError:
        rel = Path(path.name)
    parts = list(rel.parts)
    if parts and parts[0] == "src":
        parts = parts[1:]
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


class Project:
    """The analysis set: module and class indexes over all parsed files."""

    def __init__(self, files: Sequence[FileContext], config: LintConfig):
        self.files = list(files)
        self.config = config
        self.modules: dict[str, FileContext] = {ctx.module: ctx for ctx in files}
        #: (module, class name) -> (ctx, ClassDef)
        self.classes: dict[tuple[str, str], tuple[FileContext, ast.ClassDef]] = {}
        for ctx in files:
            for node in ast.walk(ctx.tree):
                if isinstance(node, ast.ClassDef):
                    self.classes[(ctx.module, node.name)] = (ctx, node)

    # ------------------------------------------------------- name resolution
    def imported_symbols(self, ctx: FileContext) -> dict[str, tuple[str, str]]:
        """Map local name -> (module, symbol) for every ``from X import Y``.

        Imports anywhere in the file count (the registry imports CLICPolicy
        inside a function to break an import cycle).
        """
        symbols: dict[str, tuple[str, str]] = {}
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ImportFrom) and node.module:
                for alias in node.names:
                    symbols[alias.asname or alias.name] = (node.module, alias.name)
        return symbols

    def resolve_class(
        self, ctx: FileContext, name: str
    ) -> tuple[FileContext, ast.ClassDef] | None:
        """Resolve *name*, used in *ctx*, to a class definition in the set."""
        if (ctx.module, name) in self.classes:
            return self.classes[(ctx.module, name)]
        target = self.imported_symbols(ctx).get(name)
        if target is not None and (target[0], target[1]) in self.classes:
            return self.classes[(target[0], target[1])]
        return None

    def class_lineage(
        self, ctx: FileContext, classdef: ast.ClassDef
    ) -> list[tuple[FileContext, ast.ClassDef]]:
        """*classdef* plus every base class resolvable inside the set (MRO-ish
        order, duplicates dropped)."""
        lineage: list[tuple[FileContext, ast.ClassDef]] = []
        seen: set[tuple[str, str]] = set()
        queue: list[tuple[FileContext, ast.ClassDef]] = [(ctx, classdef)]
        while queue:
            cur_ctx, cur = queue.pop(0)
            key = (cur_ctx.module, cur.name)
            if key in seen:
                continue
            seen.add(key)
            lineage.append((cur_ctx, cur))
            for base in cur.bases:
                if isinstance(base, ast.Name):
                    resolved = self.resolve_class(cur_ctx, base.id)
                    if resolved is not None:
                        queue.append(resolved)
        return lineage

    def is_subclass_of(
        self, ctx: FileContext, classdef: ast.ClassDef, base_name: str
    ) -> bool:
        """Whether *classdef* has *base_name* anywhere in its resolvable
        lineage (by class name, so fixture files can fake the base)."""
        for _, cls in self.class_lineage(ctx, classdef):
            if cls.name == base_name:
                return True
            for base in cls.bases:
                if isinstance(base, ast.Name) and base.id == base_name:
                    return True
                if isinstance(base, ast.Attribute) and base.attr == base_name:
                    return True
        return False


# --------------------------------------------------------------------- rules
class Rule:
    """Base of all rules: an id, a one-line summary, a rationale."""

    rule_id: str = ""
    summary: str = ""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Rule {self.rule_id}>"


class FileRule(Rule):
    def check_file(
        self, ctx: FileContext, config: LintConfig
    ) -> Iterator[Violation]:  # pragma: no cover - interface
        raise NotImplementedError


class ProjectRule(Rule):
    def check_project(
        self, project: Project, config: LintConfig
    ) -> Iterator[Violation]:  # pragma: no cover - interface
        raise NotImplementedError


# -------------------------------------------------------------- suppressions
_SUPPRESS_RE = re.compile(r"#\s*lintkit:\s*ignore\[([A-Za-z0-9_-]+)\]\s*(.*)$")

SUPPRESSION_REASON_RULE = "suppression-reason"
SUPPRESSION_UNUSED_RULE = "suppression-unused"


def parse_suppressions(ctx: FileContext) -> list[Suppression]:
    found: list[Suppression] = []
    for lineno, line in enumerate(ctx.source.splitlines(), start=1):
        match = _SUPPRESS_RE.search(line)
        if match:
            found.append(
                Suppression(ctx.relpath, lineno, match.group(1), match.group(2).strip())
            )
    return found


# ------------------------------------------------------------------- running
@dataclass
class RunResult:
    """Outcome of one lint run."""

    violations: list[Violation]
    suppressed: list[tuple[Violation, Suppression]]
    files: int

    @property
    def ok(self) -> bool:
        return not self.violations


def collect_files(paths: Iterable[Path], config: LintConfig) -> list[Path]:
    """Expand *paths* into the sorted list of ``.py`` files to analyze."""
    out: set[Path] = set()
    for path in paths:
        if path.is_dir():
            for sub in path.rglob("*.py"):
                if not config.is_exempt(sub.relative_to(path)):
                    out.add(sub)
        elif path.suffix == ".py":
            out.add(path)
        else:
            raise FileNotFoundError(f"not a python file or directory: {path}")
    return sorted(out)


def run_paths(
    paths: Sequence[Path],
    config: LintConfig | None = None,
    rules: Sequence[Rule] | None = None,
    select: Sequence[str] | None = None,
) -> RunResult:
    """Run the rule set over *paths* and fold in suppressions."""
    from tools.lintkit.rules import ALL_RULES

    config = config or LintConfig()
    chosen: list[Rule] = list(rules if rules is not None else ALL_RULES)
    if select:
        wanted = set(select)
        chosen = [rule for rule in chosen if rule.rule_id in wanted]
        unknown = wanted - {rule.rule_id for rule in chosen}
        if unknown:
            raise KeyError(f"unknown rule id(s): {sorted(unknown)}")

    files = [FileContext(path, config.root) for path in collect_files(paths, config)]
    project = Project(files, config)

    raw: list[Violation] = []
    for rule in chosen:
        if isinstance(rule, FileRule):
            for ctx in files:
                raw.extend(rule.check_file(ctx, config))
        elif isinstance(rule, ProjectRule):
            raw.extend(rule.check_project(project, config))

    suppressions: list[Suppression] = []
    for ctx in files:
        suppressions.extend(parse_suppressions(ctx))

    by_site = {(s.path, s.line, s.rule_id): s for s in suppressions}
    used: set[tuple[str, int, str]] = set()
    violations: list[Violation] = []
    suppressed: list[tuple[Violation, Suppression]] = []
    for violation in raw:
        key = (violation.path, violation.line, violation.rule_id)
        hit = by_site.get(key)
        if hit is not None and hit.reason:
            used.add(key)
            suppressed.append((violation, hit))
        else:
            violations.append(violation)

    for suppression in suppressions:
        if not suppression.reason:
            violations.append(
                Violation(
                    suppression.path,
                    suppression.line,
                    SUPPRESSION_REASON_RULE,
                    f"suppression of [{suppression.rule_id}] has no reason; "
                    "write `# lintkit: ignore[rule-id] <why this is safe>`",
                )
            )
        elif (suppression.path, suppression.line, suppression.rule_id) not in used:
            violations.append(
                Violation(
                    suppression.path,
                    suppression.line,
                    SUPPRESSION_UNUSED_RULE,
                    f"suppression of [{suppression.rule_id}] matches no violation "
                    "on this line; delete it",
                )
            )

    violations.sort(key=lambda v: (v.path, v.line, v.rule_id))
    return RunResult(violations=violations, suppressed=suppressed, files=len(files))


# ------------------------------------------------------------------- helpers
def dotted_name(node: ast.AST) -> str | None:
    """Render ``a.b.c`` attribute/name chains; ``None`` for anything else."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None
