"""Rule catalogue: every lintkit rule, grouped by family."""

from __future__ import annotations

from tools.lintkit.core import Rule
from tools.lintkit.rules.batch_parity import BatchKernelParityRule
from tools.lintkit.rules.int_clock import IntClockFloatRule
from tools.lintkit.rules.kernel_contract import (
    KernelAccessOutcomeRule,
    KernelNoIORule,
    KernelRequestMutationRule,
    KernelSnapshotFieldsRule,
)
from tools.lintkit.rules.nondeterminism import (
    EntropySourceRule,
    SetIterationRule,
    UnseededRandomRule,
    WallClockRule,
)
from tools.lintkit.rules.observer_purity import (
    ObserverMergeRequiredRule,
    ObserverParamMutationRule,
)
from tools.lintkit.rules.registry_complete import (
    RegistryGoldenFixtureRule,
    RegistryInvariantSuiteRule,
    RegistryPolicyUnregisteredRule,
)
from tools.lintkit.rules.typing_gate import TypingAnnotationsRule

__all__ = ["ALL_RULES", "rule_catalogue"]

#: Every rule, in reporting order.  The tuple is the single source of truth:
#: the CLI's ``--list-rules``, the docs table and the self-tests all derive
#: from it.
ALL_RULES: tuple[Rule, ...] = (
    # family 1: no-nondeterminism
    WallClockRule(),
    UnseededRandomRule(),
    EntropySourceRule(),
    SetIterationRule(),
    # family 2: kernel-contract
    KernelAccessOutcomeRule(),
    KernelSnapshotFieldsRule(),
    KernelNoIORule(),
    KernelRequestMutationRule(),
    BatchKernelParityRule(),
    # family 3: observer-purity
    ObserverParamMutationRule(),
    ObserverMergeRequiredRule(),
    # family 4: int-clock-safety
    IntClockFloatRule(),
    # family 5: registry-completeness
    RegistryGoldenFixtureRule(),
    RegistryInvariantSuiteRule(),
    RegistryPolicyUnregisteredRule(),
    # family 6: typing-gate
    TypingAnnotationsRule(),
)


def rule_catalogue() -> list[tuple[str, str]]:
    """(rule id, summary) pairs for every rule."""
    return [(rule.rule_id, rule.summary) for rule in ALL_RULES]
