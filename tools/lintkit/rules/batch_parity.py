"""Family 2 — kernel-contract: batch-kernel parity coverage.

``CachePolicy.batch_access`` is a pure performance fast path: the batch
kernel contract says any override must be outcome-for-outcome identical to
the scalar ``access()`` loop, and the scalar==batch equivalence suite
(``tests/cache/test_batch_parity.py``) is what pins that.  The suite derives
its policy list from the registry (``available_policies()``), so a policy is
covered exactly when it is registered (or named in the suite explicitly).
This rule closes the gap a fused kernel could otherwise slip through: an
overriding policy that neither the registry nor the suite can reach would
ship a batch kernel nobody ever compares against its scalar twin.

Like the registry-completeness family, the rule only fires when the policy
registry module is part of the analysis set, so fixture runs stay
self-contained.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterator

from tools.lintkit.core import LintConfig, Project, ProjectRule, Violation
from tools.lintkit.rules.kernel_contract import _is_abstract, _methods, policy_classes

__all__ = ["BatchKernelParityRule"]


class BatchKernelParityRule(ProjectRule):
    """Every ``batch_access`` override is held to the scalar==batch
    equivalence suite: the suite derives its cases from the registry, and
    the overriding policy is reachable from it."""

    rule_id = "batch-kernel-parity"
    summary = "every batch_access override is covered by the parity suite"

    def check_project(
        self, project: Project, config: LintConfig
    ) -> Iterator[Violation]:
        registry_ctx = project.modules.get(config.policy_registry_module)
        if registry_ctx is None:
            return
        overriders = [
            (ctx, cls)
            for ctx, cls in policy_classes(project)
            if "batch_access" in _methods(cls) and not _is_abstract(cls)
        ]
        if not overriders:
            return
        suite_path = Path(config.root) / config.batch_parity_suite
        if not suite_path.is_file():
            yield registry_ctx.violation(
                1,
                self.rule_id,
                f"batch kernels exist but the scalar==batch equivalence "
                f"suite `{config.batch_parity_suite}` does not",
            )
            return
        suite_source = suite_path.read_text(encoding="utf-8")
        suite = ast.parse(suite_source)
        imported = any(
            isinstance(node, ast.ImportFrom)
            and node.module == config.policy_registry_module
            and any(alias.name == "available_policies" for alias in node.names)
            for node in ast.walk(suite)
        )
        called = any(
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "available_policies"
            for node in ast.walk(suite)
        )
        if not (imported and called):
            yield registry_ctx.violation(
                1,
                self.rule_id,
                f"`{config.batch_parity_suite}` must import and call "
                f"`available_policies` from `{config.policy_registry_module}` "
                "so every registered batch kernel is compared against its "
                "scalar twin",
            )
            return
        # A registered policy is reachable through the suite's
        # available_policies()-derived cases; anything else must be named in
        # the suite explicitly.
        registered = {
            node.id
            for node in ast.walk(registry_ctx.tree)
            if isinstance(node, ast.Name)
        }
        for ctx, cls in overriders:
            if cls.name in registered or cls.name in suite_source:
                continue
            yield ctx.violation(
                cls,
                self.rule_id,
                f"policy class `{cls.name}` overrides batch_access but is "
                f"neither registered in `{config.policy_registry_module}` nor "
                f"named in `{config.batch_parity_suite}`; the scalar==batch "
                "equivalence suite cannot hold its batch kernel to the "
                "contract",
            )
