"""Family 4 — int-clock-safety.

The queueing simulation keeps its event clock in *integer nanoseconds* (the
``*_ns`` naming convention: ``busy_ns``, ``total_delay_ns``, ...), because
float accumulation is order-dependent — summing the same service times in a
different chunk split would break the bit-identical ``jobs=1 == jobs=N``
guarantee and the vector==scalar Lindley identity.  Floats are allowed only
at the boundary, explicitly truncated: ``int(us * 1000.0 + 0.5)`` or numpy's
``.astype(int64)``.

This rule flags any assignment (plain, augmented or annotated) or return
that feeds a ``*_ns`` target from an expression containing float arithmetic
— true division, float literals, ``float()`` — outside such an explicit
integer coercion.
"""

from __future__ import annotations

import ast
from typing import Iterator

from tools.lintkit.core import FileContext, FileRule, LintConfig, Violation, dotted_name

__all__ = ["IntClockFloatRule"]

#: Calls that coerce their result to an integer: float arithmetic *inside*
#: them is the sanctioned boundary conversion.
_INT_COERCIONS = {"int", "round", "len"}
_INT_COERCION_METHODS = {"astype", "bit_length"}


def _float_leak(node: ast.AST) -> ast.AST | None:
    """First sub-expression producing float-ness outside an int coercion."""
    if isinstance(node, ast.Call):
        chain = dotted_name(node.func)
        if chain in _INT_COERCIONS:
            return None
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in _INT_COERCION_METHODS
        ):
            return None
        if chain == "float":
            return node
    if isinstance(node, ast.Constant) and isinstance(node.value, float):
        return node
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Div):
        return node
    for child in ast.iter_child_nodes(node):
        leak = _float_leak(child)
        if leak is not None:
            return leak
    return None


def _ns_target_name(target: ast.expr) -> str | None:
    if isinstance(target, ast.Name) and target.id.endswith("_ns"):
        return target.id
    if isinstance(target, ast.Attribute) and target.attr.endswith("_ns"):
        return ast.unparse(target)
    return None


class IntClockFloatRule(FileRule):
    """No float arithmetic may feed an integer-nanosecond accumulator."""

    rule_id = "int-clock-float"
    summary = "*_ns clock variables only ever hold exact integers"

    def check_file(self, ctx: FileContext, config: LintConfig) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            targets: list[ast.expr] = []
            value: ast.AST | None = None
            if isinstance(node, ast.Assign):
                targets, value = node.targets, node.value
            elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
                targets, value = [node.target], node.value
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if node.name.endswith("_ns"):
                    yield from self._check_returns(ctx, node)
                continue
            if value is None:
                continue
            for target in targets:
                name = _ns_target_name(target)
                if name is None:
                    continue
                leak = _float_leak(value)
                if leak is not None:
                    yield ctx.violation(
                        node,
                        self.rule_id,
                        f"float arithmetic (`{ast.unparse(leak)}`) feeds the "
                        f"integer-nanosecond clock `{name}`; convert at the "
                        "boundary with `int(x * 1000.0 + 0.5)` (or "
                        "`.astype(int64)`) instead",
                    )

    def _check_returns(
        self, ctx: FileContext, fn: ast.FunctionDef
    ) -> Iterator[Violation]:
        for node in ast.walk(fn):
            if isinstance(node, ast.Return) and node.value is not None:
                leak = _float_leak(node.value)
                if leak is not None:
                    yield ctx.violation(
                        node,
                        self.rule_id,
                        f"`{fn.name}()` returns float arithmetic "
                        f"(`{ast.unparse(leak)}`); *_ns values are exact "
                        "integers — coerce explicitly with int()/round()",
                    )
