"""Family 2 — kernel-contract.

Policies are pure kernels (see ``docs/architecture.md``, "policy kernel
contract"): ``access(request, seq)`` returns an ``AccessOutcome`` and
mutates nothing but replacement state; snapshot/restore field lists describe
real attributes; kernels never touch files, sockets or the request they were
handed.  These rules apply to every class in the analysis set that
subclasses ``CachePolicy`` — and the registry is cross-checked so a policy
cannot dodge them by not being analyzed.
"""

from __future__ import annotations

import ast
from typing import Iterator

from tools.lintkit.core import (
    FileContext,
    LintConfig,
    Project,
    ProjectRule,
    Violation,
    dotted_name,
)

__all__ = [
    "KernelAccessOutcomeRule",
    "KernelNoIORule",
    "KernelRequestMutationRule",
    "KernelSnapshotFieldsRule",
    "policy_classes",
]

_POLICY_BASE = "CachePolicy"


def policy_classes(
    project: Project,
) -> list[tuple[FileContext, ast.ClassDef]]:
    """Every concrete policy class in the analysis set: subclasses of
    ``CachePolicy`` (resolved by lineage), excluding the base itself."""
    found = []
    for (module, name), (ctx, cls) in sorted(project.classes.items()):
        if name == _POLICY_BASE:
            continue
        if project.is_subclass_of(ctx, cls, _POLICY_BASE):
            found.append((ctx, cls))
    return found


def _methods(cls: ast.ClassDef) -> dict[str, ast.FunctionDef]:
    return {
        item.name: item
        for item in cls.body
        if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
    }


def _lineage_methods(
    project: Project, ctx: FileContext, cls: ast.ClassDef
) -> dict[str, ast.FunctionDef]:
    """Method table over the resolvable lineage (subclass overrides win)."""
    table: dict[str, ast.FunctionDef] = {}
    for _, ancestor in project.class_lineage(ctx, cls):
        for name, fn in _methods(ancestor).items():
            table.setdefault(name, fn)
    return table


def _annotation_text(annotation: ast.AST | None) -> str | None:
    if annotation is None:
        return None
    if isinstance(annotation, ast.Constant) and isinstance(annotation.value, str):
        return annotation.value
    return ast.unparse(annotation)


class KernelAccessOutcomeRule(ProjectRule):
    """``access`` is the kernel's only output channel: it must exist, be
    annotated ``-> AccessOutcome``, and never return bare/None."""

    rule_id = "kernel-access-outcome"
    summary = "policy classes implement access(request, seq) -> AccessOutcome"

    def check_project(
        self, project: Project, config: LintConfig
    ) -> Iterator[Violation]:
        for ctx, cls in policy_classes(project):
            if _is_abstract(cls):
                continue
            table = _lineage_methods(project, ctx, cls)
            access = table.get("access")
            if access is None:
                yield ctx.violation(
                    cls,
                    self.rule_id,
                    f"policy class `{cls.name}` defines no access() method "
                    "anywhere in its lineage",
                )
                continue
            returns = _annotation_text(access.returns)
            if returns is None or returns.split(".")[-1].strip('"\'') != "AccessOutcome":
                yield ctx.violation(
                    access if access in cls.body else cls,
                    self.rule_id,
                    f"`{cls.name}.access` must be annotated "
                    f"`-> AccessOutcome` (found `{returns}`)",
                )
            own_access = _methods(cls).get("access")
            if own_access is not None:
                for node in ast.walk(own_access):
                    if isinstance(node, ast.Return) and (
                        node.value is None
                        or (
                            isinstance(node.value, ast.Constant)
                            and node.value.value is None
                        )
                    ):
                        yield ctx.violation(
                            node,
                            self.rule_id,
                            f"`{cls.name}.access` returns None; every access "
                            "must produce an AccessOutcome event",
                        )


class KernelSnapshotFieldsRule(ProjectRule):
    """``_SNAPSHOT_EXCLUDE`` / ``_SNAPSHOT_SHARED`` name instance attributes;
    a stale name silently changes what snapshot()/restore() capture."""

    rule_id = "kernel-snapshot-fields"
    summary = "_SNAPSHOT_EXCLUDE/_SNAPSHOT_SHARED entries name real attributes"

    _LISTS = ("_SNAPSHOT_EXCLUDE", "_SNAPSHOT_SHARED")

    def check_project(
        self, project: Project, config: LintConfig
    ) -> Iterator[Violation]:
        for ctx, cls in policy_classes(project) + self._base_classes(project):
            assigned = _assigned_attrs_in_lineage(project, ctx, cls)
            for list_name, node, names in self._declared_lists(cls):
                for name in names:
                    if name not in assigned:
                        yield ctx.violation(
                            node,
                            self.rule_id,
                            f"`{cls.name}.{list_name}` names `{name}`, but no "
                            "method in the class lineage ever assigns "
                            f"`self.{name}`",
                        )

    def _base_classes(self, project: Project) -> list:
        # The base class declares the default lists; hold it to the rule too.
        return [
            (ctx, cls)
            for (module, name), (ctx, cls) in sorted(project.classes.items())
            if name == _POLICY_BASE
        ]

    def _declared_lists(self, cls: ast.ClassDef):
        for item in cls.body:
            targets: list[ast.expr] = []
            value: ast.AST | None = None
            if isinstance(item, ast.Assign):
                targets, value = item.targets, item.value
            elif isinstance(item, ast.AnnAssign) and item.value is not None:
                targets, value = [item.target], item.value
            for target in targets:
                if isinstance(target, ast.Name) and target.id in self._LISTS:
                    yield target.id, item, _string_elements(value)


def _string_elements(value: ast.AST | None) -> list[str]:
    """String literals inside frozenset({...}) / set / tuple / list displays."""
    if value is None:
        return []
    if isinstance(value, ast.Call) and dotted_name(value.func) in ("frozenset", "set", "tuple"):
        return _string_elements(value.args[0]) if value.args else []
    if isinstance(value, (ast.Set, ast.Tuple, ast.List)):
        return [
            el.value
            for el in value.elts
            if isinstance(el, ast.Constant) and isinstance(el.value, str)
        ]
    return []


def _assigned_attrs_in_lineage(
    project: Project, ctx: FileContext, cls: ast.ClassDef
) -> set[str]:
    assigned: set[str] = set()
    for _, ancestor in project.class_lineage(ctx, cls):
        for node in ast.walk(ancestor):
            if isinstance(node, ast.Assign):
                for t in node.targets:
                    assigned.update(_self_attr(t))
            elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
                assigned.update(_self_attr(node.target))
    return assigned


def _self_attr(target: ast.expr) -> list[str]:
    if (
        isinstance(target, ast.Attribute)
        and isinstance(target.value, ast.Name)
        and target.value.id == "self"
    ):
        return [target.attr]
    if isinstance(target, ast.Tuple):
        out: list[str] = []
        for el in target.elts:
            out.extend(_self_attr(el))
        return out
    return []


class KernelNoIORule(ProjectRule):
    """A policy kernel must be replayable anywhere: no files, sockets,
    processes or terminal output from inside a policy class."""

    rule_id = "kernel-no-io"
    summary = "no file/network/process I/O inside policy classes"

    _BARE_CALLS = {"open", "input", "print", "breakpoint"}
    _MODULE_ROOTS = {
        "os",
        "io",
        "sys",
        "socket",
        "ssl",
        "http",
        "urllib",
        "requests",
        "subprocess",
        "shutil",
        "pathlib",
        "tempfile",
        "logging",
    }

    def check_project(
        self, project: Project, config: LintConfig
    ) -> Iterator[Violation]:
        for ctx, cls in policy_classes(project):
            for node in ast.walk(cls):
                if not isinstance(node, ast.Call):
                    continue
                chain = dotted_name(node.func)
                if chain is None:
                    continue
                root = chain.split(".")[0]
                if chain in self._BARE_CALLS:
                    yield ctx.violation(
                        node,
                        self.rule_id,
                        f"`{chain}()` inside policy class `{cls.name}`: kernels "
                        "perform no I/O; report through AccessOutcome instead",
                    )
                elif root in self._MODULE_ROOTS and "." in chain:
                    yield ctx.violation(
                        node,
                        self.rule_id,
                        f"`{chain}()` inside policy class `{cls.name}`: kernels "
                        "must not touch the OS, filesystem or network",
                    )


class KernelRequestMutationRule(ProjectRule):
    """The request is shared by every policy in a multi-policy replay;
    a kernel writing to it corrupts its neighbours' inputs."""

    rule_id = "kernel-request-mutation"
    summary = "access()/prepare() never assign to the request they receive"

    _METHODS = ("access", "prepare")

    def check_project(
        self, project: Project, config: LintConfig
    ) -> Iterator[Violation]:
        for ctx, cls in policy_classes(project):
            for name, fn in _methods(cls).items():
                if name not in self._METHODS:
                    continue
                params = [
                    a.arg
                    for a in fn.args.posonlyargs + fn.args.args
                    if a.arg not in ("self", "cls")
                ]
                if not params:
                    continue
                request_param = params[0]
                yield from self._check_stores(ctx, cls, fn, request_param)

    def _check_stores(
        self, ctx: FileContext, cls: ast.ClassDef, fn: ast.FunctionDef, param: str
    ) -> Iterator[Violation]:
        for node in ast.walk(fn):
            targets: list[ast.expr] = []
            if isinstance(node, ast.Assign):
                targets = node.targets
            elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
                targets = [node.target]
            elif isinstance(node, ast.Call):
                chain = dotted_name(node.func)
                if chain == "setattr" and node.args:
                    root = _root_name(node.args[0])
                    if root == param:
                        yield ctx.violation(
                            node,
                            self.rule_id,
                            f"`{cls.name}.{fn.name}` mutates its request via "
                            "setattr(); requests are immutable inputs",
                        )
                continue
            for target in targets:
                if isinstance(target, (ast.Attribute, ast.Subscript)):
                    if _root_name(target) == param:
                        yield ctx.violation(
                            node,
                            self.rule_id,
                            f"`{cls.name}.{fn.name}` assigns to "
                            f"`{ast.unparse(target)}`; requests are shared, "
                            "immutable inputs",
                        )


def _root_name(node: ast.AST) -> str | None:
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return None


def _is_abstract(cls: ast.ClassDef) -> bool:
    """Heuristic: class declares abstract methods or an ABC/Protocol base."""
    for base in cls.bases:
        name = dotted_name(base) or ""
        if name.split(".")[-1] in ("ABC", "Protocol"):
            return True
    for keyword in cls.keywords:
        if keyword.arg == "metaclass":
            return True
    for item in cls.body:
        if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
            for deco in item.decorator_list:
                if (dotted_name(deco) or "").endswith("abstractmethod"):
                    return True
    return False
