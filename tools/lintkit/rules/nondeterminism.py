"""Family 1 — no-nondeterminism.

Replay results must be a pure function of (trace, seed, configuration):
bit-identical across runs, machines and ``jobs=N`` splits.  Three classes of
leak are banned outright in library code (wall clocks, ambient randomness,
OS entropy), and set/frozenset iteration is banned wherever its
hash-dependent order can flow into an ordering-sensitive sink.
"""

from __future__ import annotations

import ast
from typing import Iterator

from tools.lintkit.core import FileContext, FileRule, LintConfig, Violation, dotted_name

__all__ = [
    "EntropySourceRule",
    "SetIterationRule",
    "UnseededRandomRule",
    "WallClockRule",
]


#: Dotted call chains that read a wall clock.
_WALL_CLOCK_CALLS = {
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.process_time",
    "datetime.now",
    "datetime.utcnow",
    "datetime.today",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.date.today",
    "date.today",
}

#: Dotted call chains that read OS entropy.
_ENTROPY_CALLS = {
    "os.urandom",
    "os.getrandom",
    "uuid.uuid1",
    "uuid.uuid4",
    "secrets.token_bytes",
    "secrets.token_hex",
    "secrets.token_urlsafe",
    "secrets.randbelow",
    "secrets.choice",
}


def _call_chain(node: ast.Call) -> str | None:
    return dotted_name(node.func)


class WallClockRule(FileRule):
    """Wall-clock reads make replay output depend on when it ran."""

    rule_id = "wall-clock"
    summary = "no wall-clock reads (time.time, datetime.now, ...) in library code"

    def check_file(self, ctx: FileContext, config: LintConfig) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                chain = _call_chain(node)
                if chain in _WALL_CLOCK_CALLS:
                    yield ctx.violation(
                        node,
                        self.rule_id,
                        f"wall-clock read `{chain}()`: replay must be a pure "
                        "function of (trace, seed, config); thread a logical "
                        "clock or timestamp through parameters instead",
                    )


class EntropySourceRule(FileRule):
    """OS entropy can never be replayed."""

    rule_id = "entropy-source"
    summary = "no OS entropy (os.urandom, uuid.uuid4, secrets.*) in library code"

    def check_file(self, ctx: FileContext, config: LintConfig) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                chain = _call_chain(node)
                if chain in _ENTROPY_CALLS:
                    yield ctx.violation(
                        node,
                        self.rule_id,
                        f"OS entropy source `{chain}()`: derive identifiers and "
                        "draws from the run's seed instead",
                    )


class UnseededRandomRule(FileRule):
    """Every RNG must be constructed from an explicit seed.

    Flags the module-level ``random.*`` functions (they share one ambient,
    process-global generator), ``random.Random()`` with no seed argument,
    and numpy's equivalents (``np.random.<fn>`` legacy global state,
    ``default_rng()`` without a seed).
    """

    rule_id = "unseeded-random"
    summary = "RNGs must be seeded: no bare random.Random() / module-level random.*"

    def check_file(self, ctx: FileContext, config: LintConfig) -> Iterator[Violation]:
        # Names imported straight out of the random module, e.g.
        # ``from random import Random, randint``.
        from_random: dict[str, str] = {}
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ImportFrom) and node.module == "random":
                for alias in node.names:
                    from_random[alias.asname or alias.name] = alias.name

        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            chain = _call_chain(node)
            if chain is None:
                continue
            parts = chain.split(".")
            # random.Random() / random.SystemRandom() / random.<fn>()
            if parts[0] == "random" and len(parts) == 2:
                yield from self._check_random_symbol(ctx, node, parts[1], chain)
            elif len(parts) == 1 and parts[0] in from_random:
                yield from self._check_random_symbol(
                    ctx, node, from_random[parts[0]], chain
                )
            # numpy: np.random.<fn>() legacy global state; default_rng()
            # without a seed argument.
            elif "random" in parts[:-1] and parts[0] in ("np", "numpy"):
                symbol = parts[-1]
                if symbol in ("default_rng", "Generator", "RandomState", "SeedSequence"):
                    if not node.args and not node.keywords:
                        yield ctx.violation(
                            node,
                            self.rule_id,
                            f"`{chain}()` without a seed draws OS entropy; pass "
                            "an explicit seed",
                        )
                else:
                    yield ctx.violation(
                        node,
                        self.rule_id,
                        f"`{chain}()` uses numpy's process-global RNG; construct "
                        "`numpy.random.default_rng(seed)` and pass it through",
                    )

    def _check_random_symbol(
        self, ctx: FileContext, node: ast.Call, symbol: str, chain: str
    ) -> Iterator[Violation]:
        if symbol == "SystemRandom":
            yield ctx.violation(
                node,
                self.rule_id,
                f"`{chain}()` is OS-entropy backed and can never be replayed",
            )
        elif symbol == "Random":
            if not node.args and not node.keywords:
                yield ctx.violation(
                    node,
                    self.rule_id,
                    f"`{chain}()` without a seed is seeded from OS entropy; "
                    "pass an explicit seed (or accept one as a parameter)",
                )
        elif symbol[:1].islower():
            yield ctx.violation(
                node,
                self.rule_id,
                f"`{chain}()` uses the process-global RNG; construct "
                "`random.Random(seed)` and pass it through",
            )


class SetIterationRule(FileRule):
    """Set iteration order is hash-dependent (PYTHONHASHSEED for strings,
    insertion history for everything else): letting it flow into a list,
    tuple, join or keyed min/max bakes that order into replay output.

    The rule tracks which local names, parameters and ``self.*`` attributes
    are provably set-valued (set/frozenset literals, comprehensions,
    constructors, ``set[...]`` annotations, unions/differences of the same)
    and flags iteration over them in ordering-sensitive positions:

    * ``for x in <set>:`` statements and ``list``/generator comprehensions;
    * ``list(<set>)``, ``tuple(<set>)``, ``enumerate(<set>)``,
      ``iter(<set>)``, ``sep.join(<set>)``;
    * ``min``/``max`` over a set **with a key function** (ties resolve in
      iteration order; bare min/max over a totally ordered set is fine).

    ``sorted(<set>)`` is the canonical fix and is always allowed, as are
    order-insensitive folds (``len``, ``sum``, ``any``, ``all``, membership,
    set/dict comprehensions producing unordered results).
    """

    rule_id = "set-iteration"
    summary = "no set/frozenset iteration into ordering-sensitive sinks; sort first"

    _SINK_CALLS = ("list", "tuple", "enumerate", "iter")

    def check_file(self, ctx: FileContext, config: LintConfig) -> Iterator[Violation]:
        # ``self.<attr>`` set-valuedness is a property of the class (assigned
        # in __init__, iterated in other methods), so resolve each function
        # scope to its owning class first.
        owner_class: dict[ast.AST, ast.ClassDef] = {}
        class_attrs: dict[ast.ClassDef, set[str]] = {}
        for cls in ast.walk(ctx.tree):
            if isinstance(cls, ast.ClassDef):
                class_attrs[cls] = _set_valued_self_attrs(cls)
                for item in cls.body:
                    if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        owner_class[item] = cls

        for scope in _function_scopes(ctx.tree):
            set_names = _set_valued_names(scope)
            cls = owner_class.get(scope)
            set_attrs = class_attrs.get(cls, set()) if cls is not None else set()

            def is_set(node: ast.AST) -> bool:
                return _is_set_valued(node, set_names, set_attrs)

            for node in _walk_shallow_functions(scope):
                if isinstance(node, ast.For) and is_set(node.iter):
                    yield ctx.violation(
                        node,
                        self.rule_id,
                        "for-loop over a set: iteration order is "
                        "hash-dependent; iterate `sorted(...)` instead",
                    )
                elif isinstance(node, (ast.ListComp, ast.GeneratorExp)):
                    for gen in node.generators:
                        if is_set(gen.iter):
                            yield ctx.violation(
                                node,
                                self.rule_id,
                                "comprehension over a set builds an "
                                "order-sensitive sequence; iterate "
                                "`sorted(...)` instead",
                            )
                elif isinstance(node, ast.Call):
                    yield from self._check_call(ctx, node, is_set)

    def _check_call(self, ctx, node: ast.Call, is_set) -> Iterator[Violation]:
        chain = dotted_name(node.func)
        first = node.args[0] if node.args else None
        if first is None:
            return
        if chain in self._SINK_CALLS and is_set(first):
            yield ctx.violation(
                node,
                self.rule_id,
                f"`{chain}(...)` over a set captures hash-dependent order; "
                "use `sorted(...)`",
            )
        elif (
            isinstance(node.func, ast.Attribute)
            and node.func.attr == "join"
            and is_set(first)
        ):
            yield ctx.violation(
                node,
                self.rule_id,
                "`.join(...)` over a set serializes hash-dependent order; "
                "use `sorted(...)`",
            )
        elif chain in ("min", "max") and is_set(first) and node.keywords:
            if any(kw.arg == "key" for kw in node.keywords):
                yield ctx.violation(
                    node,
                    self.rule_id,
                    f"`{chain}(..., key=...)` over a set resolves ties in "
                    "iteration order; sort (with a total tiebreak) instead",
                )


# ------------------------------------------------- set-valuedness inference
_SCOPE_NODES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Module)


def _function_scopes(tree: ast.Module) -> list[ast.AST]:
    return [node for node in ast.walk(tree) if isinstance(node, _SCOPE_NODES)]


def _walk_shallow_functions(scope: ast.AST) -> Iterator[ast.AST]:
    """Walk *scope* without descending into nested function scopes (they are
    visited as their own scopes)."""
    stack = list(ast.iter_child_nodes(scope))
    while stack:
        node = stack.pop()
        yield node
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            stack.extend(ast.iter_child_nodes(node))


def _is_set_expr(node: ast.AST) -> bool:
    """Expressions that are a set by construction."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        chain = dotted_name(node.func)
        if chain in ("set", "frozenset"):
            return True
        if isinstance(node.func, ast.Attribute) and node.func.attr in (
            "union",
            "intersection",
            "difference",
            "symmetric_difference",
        ):
            return _is_set_expr(node.func.value)
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
    ):
        return _is_set_expr(node.left) or _is_set_expr(node.right)
    return False


def _is_set_annotation(annotation: ast.AST | None) -> bool:
    if annotation is None:
        return False
    if isinstance(annotation, ast.Name):
        return annotation.id in ("set", "frozenset")
    if isinstance(annotation, ast.Subscript):
        return _is_set_annotation(annotation.value)
    if isinstance(annotation, ast.Constant) and isinstance(annotation.value, str):
        head = annotation.value.split("[", 1)[0].strip()
        return head in ("set", "frozenset")
    return False


def _set_valued_names(scope: ast.AST) -> set[str]:
    """Local names provably set-valued in *scope* (never reassigned to a
    non-set)."""
    set_names: set[str] = set()
    non_set: set[str] = set()
    if isinstance(scope, (ast.FunctionDef, ast.AsyncFunctionDef)):
        args = scope.args
        for arg in args.posonlyargs + args.args + args.kwonlyargs:
            if _is_set_annotation(arg.annotation):
                set_names.add(arg.arg)
    for node in _walk_shallow_functions(scope):
        targets: list[ast.expr] = []
        value: ast.AST | None = None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            if _is_set_annotation(node.annotation):
                set_names.add(node.target.id)
            continue
        elif isinstance(node, ast.AugAssign):
            continue
        for target in targets:
            if isinstance(target, ast.Name) and value is not None:
                if _is_set_expr(value):
                    set_names.add(target.id)
                else:
                    non_set.add(target.id)
    return set_names - non_set


def _set_valued_self_attrs(cls: ast.ClassDef) -> set[str]:
    """``self.<attr>`` names assigned a set expression anywhere in the class
    body (any method; typically ``__init__``)."""
    attrs: set[str] = set()
    for node in ast.walk(cls):
        if isinstance(node, ast.Assign) and _is_set_expr(node.value):
            for target in node.targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    attrs.add(target.attr)
        elif (
            isinstance(node, ast.AnnAssign)
            and isinstance(node.target, ast.Attribute)
            and isinstance(node.target.value, ast.Name)
            and node.target.value.id == "self"
            and _is_set_annotation(node.annotation)
        ):
            attrs.add(node.target.attr)
    return attrs


def _is_set_valued(
    node: ast.AST, set_names: set[str], set_attrs: set[str]
) -> bool:
    if _is_set_expr(node):
        return True
    if isinstance(node, ast.Name):
        return node.id in set_names
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr in set_attrs
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
    ):
        return _is_set_valued(node.left, set_names, set_attrs) or _is_set_valued(
            node.right, set_names, set_attrs
        )
    return False
