"""Family 3 — observer-purity.

Replay observers (``ReplayObserver`` implementations) share one outcome
stream: many observers see the same request/outcome objects, and the cluster
or policy they were constructed around keeps serving the replay loop.  An
observer may *read* anything it was handed but may only ever *write* its own
state — and if it accumulates per-chunk state, it must implement ``merge``
so segmented replays (``jobs=N``) rejoin into one run's accounting.
"""

from __future__ import annotations

import ast
from typing import Iterator

from tools.lintkit.core import (
    FileContext,
    LintConfig,
    Project,
    ProjectRule,
    Violation,
    dotted_name,
)

__all__ = ["ObserverMergeRequiredRule", "ObserverParamMutationRule"]

_OBSERVER_BASE = "ReplayObserver"


def observer_classes(project: Project) -> list[tuple[FileContext, ast.ClassDef]]:
    found = []
    for (module, name), (ctx, cls) in sorted(project.classes.items()):
        if name == _OBSERVER_BASE:
            continue
        if project.is_subclass_of(ctx, cls, _OBSERVER_BASE):
            found.append((ctx, cls))
    return found


def _methods(cls: ast.ClassDef) -> dict[str, ast.FunctionDef]:
    return {
        item.name: item
        for item in cls.body
        if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
    }


class ObserverParamMutationRule(ProjectRule):
    """Observers never assign to attributes of anything they were handed —
    not the policy/cluster they observe, not requests, not outcomes."""

    rule_id = "observer-param-mutation"
    summary = "observers assign only to self; never to policy/request/outcome"

    def check_project(
        self, project: Project, config: LintConfig
    ) -> Iterator[Violation]:
        for ctx, cls in observer_classes(project):
            for name, fn in _methods(cls).items():
                params = {
                    a.arg
                    for a in (
                        fn.args.posonlyargs + fn.args.args + fn.args.kwonlyargs
                    )
                    if a.arg not in ("self", "cls")
                }
                if fn.args.vararg:
                    params.add(fn.args.vararg.arg)
                if fn.args.kwarg:
                    params.add(fn.args.kwarg.arg)
                if not params:
                    continue
                yield from self._check_stores(ctx, cls, fn, params)

    def _check_stores(
        self,
        ctx: FileContext,
        cls: ast.ClassDef,
        fn: ast.FunctionDef,
        params: set[str],
    ) -> Iterator[Violation]:
        # ``merge(other)`` absorbing a same-type observer may not write to it
        # either: the segment observer is reused by the engine's fold.
        for node in ast.walk(fn):
            targets: list[ast.expr] = []
            if isinstance(node, ast.Assign):
                targets = node.targets
            elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
                targets = [node.target]
            elif isinstance(node, ast.Call):
                chain = dotted_name(node.func)
                if chain == "setattr" and node.args:
                    root = _root_name(node.args[0])
                    if root in params:
                        yield ctx.violation(
                            node,
                            self.rule_id,
                            f"`{cls.name}.{fn.name}` mutates parameter "
                            f"`{root}` via setattr(); observers write only "
                            "their own state",
                        )
                continue
            for target in targets:
                if isinstance(target, (ast.Attribute, ast.Subscript)):
                    root = _root_name(target)
                    if root in params:
                        yield ctx.violation(
                            node,
                            self.rule_id,
                            f"`{cls.name}.{fn.name}` assigns to "
                            f"`{ast.unparse(target)}`, an attribute of a "
                            "parameter; observers write only their own state",
                        )


class ObserverMergeRequiredRule(ProjectRule):
    """An observer that accumulates state in ``on_outcome``/``on_chunk``/
    ``on_chunk_end`` must define ``merge`` (itself or via a concrete repo
    base), or ``jobs=N`` replays silently drop its segments."""

    rule_id = "observer-merge-required"
    summary = "stateful observers implement merge() for segmented replays"

    _EVENT_METHODS = ("on_outcome", "on_chunk", "on_chunk_end")

    def check_project(
        self, project: Project, config: LintConfig
    ) -> Iterator[Violation]:
        for ctx, cls in observer_classes(project):
            if not self._accumulates(cls):
                continue
            lineage = project.class_lineage(ctx, cls)
            # An inherited abstract merge does not count; a concrete one does.
            for _, ancestor in lineage:
                merge = _methods(ancestor).get("merge")
                if merge is not None and not _is_abstract_method(merge):
                    break
            else:
                yield ctx.violation(
                    cls,
                    self.rule_id,
                    f"observer `{cls.name}` accumulates per-chunk state but "
                    "implements no merge(); jobs=N replays would drop its "
                    "segments",
                )

    def _accumulates(self, cls: ast.ClassDef) -> bool:
        _MUTATORS = {
            "append",
            "extend",
            "add",
            "update",
            "setdefault",
            "insert",
            "pop",
            "popleft",
            "appendleft",
        }
        for name, fn in _methods(cls).items():
            if name not in self._EVENT_METHODS:
                continue
            for node in ast.walk(fn):
                if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                    targets = (
                        node.targets
                        if isinstance(node, ast.Assign)
                        else [node.target]
                    )
                    for target in targets:
                        if _root_name(target) == "self" and not isinstance(
                            target, ast.Name
                        ):
                            return True
                elif isinstance(node, ast.Call) and isinstance(
                    node.func, ast.Attribute
                ):
                    if (
                        node.func.attr in _MUTATORS
                        and _root_name(node.func.value) == "self"
                    ):
                        return True
        return False


def _root_name(node: ast.AST) -> str | None:
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return None


def _is_abstract_method(fn: ast.FunctionDef) -> bool:
    return any(
        (dotted_name(deco) or "").endswith("abstractmethod")
        for deco in fn.decorator_list
    )
