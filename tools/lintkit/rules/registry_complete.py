"""Family 5 — registry-completeness.

The registries are the repo's contracts-of-record: every experiment in
``repro.experiments.registry`` is pinned by a golden fixture, the invariant
suite derives its policy list from ``repro.cache.registry`` (so new policies
inherit every law automatically), and every policy class actually appears in
that registry.  These rules only fire when the relevant registry module is
part of the analysis set, so fixture runs stay self-contained.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterator

from tools.lintkit.core import (
    FileContext,
    LintConfig,
    Project,
    ProjectRule,
    Violation,
)
from tools.lintkit.rules.kernel_contract import _is_abstract, policy_classes

__all__ = [
    "RegistryGoldenFixtureRule",
    "RegistryInvariantSuiteRule",
    "RegistryPolicyUnregisteredRule",
    "experiment_ids",
]


def experiment_ids(ctx: FileContext) -> list[tuple[str, ast.AST]]:
    """Experiment ids: the string keys of the ``EXPERIMENTS`` dict literal."""
    ids: list[tuple[str, ast.AST]] = []
    for node in ast.walk(ctx.tree):
        targets: list[ast.expr] = []
        value: ast.AST | None = None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        for target in targets:
            if (
                isinstance(target, ast.Name)
                and target.id == "EXPERIMENTS"
                and isinstance(value, ast.Dict)
            ):
                for key in value.keys:
                    if isinstance(key, ast.Constant) and isinstance(key.value, str):
                        ids.append((key.value, key))
    return ids


class RegistryGoldenFixtureRule(ProjectRule):
    """Every registered experiment has a golden fixture pinning its output."""

    rule_id = "registry-golden-fixture"
    summary = "every experiment in the registry has a golden JSON fixture"

    def check_project(
        self, project: Project, config: LintConfig
    ) -> Iterator[Violation]:
        ctx = project.modules.get(config.experiment_registry_module)
        if ctx is None:
            return
        golden_dir = Path(config.root) / config.golden_dir
        for experiment_id, node in experiment_ids(ctx):
            fixture = golden_dir / f"{experiment_id}.json"
            if not fixture.is_file():
                yield ctx.violation(
                    node,
                    self.rule_id,
                    f"experiment `{experiment_id}` has no golden fixture "
                    f"`{config.golden_dir}/{experiment_id}.json`; run "
                    "`PYTHONPATH=src python tools/regen_golden.py "
                    f"{experiment_id}`",
                )


class RegistryInvariantSuiteRule(ProjectRule):
    """The invariant suite must derive its policy list from the registry
    (``available_policies``), so new registrations are automatically held to
    the cross-policy laws — a hardcoded list silently exempts them."""

    rule_id = "registry-invariant-suite"
    summary = "the invariant suite derives its policy list from the registry"

    def check_project(
        self, project: Project, config: LintConfig
    ) -> Iterator[Violation]:
        registry_ctx = project.modules.get(config.policy_registry_module)
        if registry_ctx is None:
            return
        suite_path = Path(config.root) / config.invariant_suite
        if not suite_path.is_file():
            yield registry_ctx.violation(
                1,
                self.rule_id,
                f"registry-invariant suite `{config.invariant_suite}` does "
                "not exist",
            )
            return
        suite = ast.parse(suite_path.read_text(encoding="utf-8"))
        imported = any(
            isinstance(node, ast.ImportFrom)
            and node.module == config.policy_registry_module
            and any(alias.name == "available_policies" for alias in node.names)
            for node in ast.walk(suite)
        )
        called = any(
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "available_policies"
            for node in ast.walk(suite)
        )
        if not (imported and called):
            yield registry_ctx.violation(
                1,
                self.rule_id,
                f"`{config.invariant_suite}` must import and call "
                f"`available_policies` from `{config.policy_registry_module}` "
                "so every registered policy inherits the invariant laws",
            )


class RegistryPolicyUnregisteredRule(ProjectRule):
    """A policy class nobody registered is a policy no invariant suite,
    sweep or experiment will ever exercise."""

    rule_id = "registry-policy-unregistered"
    summary = "every concrete policy class appears in the policy registry"

    def check_project(
        self, project: Project, config: LintConfig
    ) -> Iterator[Violation]:
        registry_ctx = project.modules.get(config.policy_registry_module)
        if registry_ctx is None:
            return
        mentioned = {
            node.id
            for node in ast.walk(registry_ctx.tree)
            if isinstance(node, ast.Name)
        }
        for ctx, cls in policy_classes(project):
            if _is_abstract(cls):
                continue
            if cls.name not in mentioned:
                yield ctx.violation(
                    cls,
                    self.rule_id,
                    f"policy class `{cls.name}` is never mentioned in "
                    f"`{config.policy_registry_module}`; register it (or a "
                    "factory producing it) so sweeps and the invariant suite "
                    "can reach it",
                )
