"""Family 6 — typing-gate.

The replay core (``repro.cache``, ``repro.simulation``, ``repro.trace``) is
strictly typed: every function and method carries complete parameter and
return annotations.  This rule is the always-on, dependency-free floor under
the mypy gate configured in ``pyproject.toml`` — mypy (run in CI) checks the
annotations are *consistent*; this rule guarantees they *exist*, so
un-annotated code can't silently fall out of mypy's strict coverage.
"""

from __future__ import annotations

import ast
from typing import Iterator

from tools.lintkit.core import FileContext, FileRule, LintConfig, Violation

__all__ = ["TypingAnnotationsRule"]

#: Dunders whose return type is fixed by the language; annotating them adds
#: nothing and ``__init__``'s implicit None is idiomatic.
_RETURN_EXEMPT = {"__init__", "__init_subclass__", "__class_getitem__"}


class TypingAnnotationsRule(FileRule):
    """Complete parameter/return annotations in the strict packages."""

    rule_id = "typing-annotations"
    summary = "strict packages: every def has full parameter + return annotations"

    def check_file(self, ctx: FileContext, config: LintConfig) -> Iterator[Violation]:
        if not any(
            ctx.module == pkg or ctx.module.startswith(pkg + ".")
            for pkg in config.strict_typing_packages
        ):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            args = node.args
            missing = [
                arg.arg
                for arg in args.posonlyargs + args.args + args.kwonlyargs
                if arg.annotation is None and arg.arg not in ("self", "cls")
            ]
            if args.vararg is not None and args.vararg.annotation is None:
                missing.append("*" + args.vararg.arg)
            if args.kwarg is not None and args.kwarg.annotation is None:
                missing.append("**" + args.kwarg.arg)
            if missing:
                yield ctx.violation(
                    node,
                    self.rule_id,
                    f"`{node.name}` is missing parameter annotations: "
                    + ", ".join(f"`{name}`" for name in missing),
                )
            if node.returns is None and node.name not in _RETURN_EXEMPT:
                yield ctx.violation(
                    node,
                    self.rule_id,
                    f"`{node.name}` is missing a return annotation",
                )
