"""Regenerate the golden experiment fixtures under tests/experiments/golden/.

Usage (from the repository root)::

    PYTHONPATH=src python tools/regen_golden.py            # all experiments
    PYTHONPATH=src python tools/regen_golden.py fig6 fig9  # a subset

The fixtures pin the exact rows every registered experiment reports at the
tiny golden settings (see ``tests/experiments/goldens.GOLDEN_SETTINGS``).
Regenerating is the *intentional* way to move those numbers: run this, then
review the JSON diff in version control like any other code change.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT))


def main(argv=None) -> int:
    from repro.experiments.registry import EXPERIMENTS

    from tests.experiments.goldens import GOLDEN_DIR, compute_rows, fixture_path

    requested = list(argv if argv is not None else sys.argv[1:])
    unknown = [name for name in requested if name not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiments: {unknown}; known: {sorted(EXPERIMENTS)}")
        return 2
    targets = requested or sorted(EXPERIMENTS)

    GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
    for experiment_id in targets:
        rows = compute_rows(experiment_id)
        path = fixture_path(experiment_id)
        path.write_text(
            json.dumps(rows, indent=1, sort_keys=False) + "\n", encoding="utf-8"
        )
        print(f"wrote {path.relative_to(REPO_ROOT)} ({len(rows)} rows)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
