"""Regenerate or verify the golden fixtures under tests/experiments/golden/.

Usage (from the repository root)::

    PYTHONPATH=src python tools/regen_golden.py            # all experiments
    PYTHONPATH=src python tools/regen_golden.py fig6 fig9  # a subset
    PYTHONPATH=src python tools/regen_golden.py --check    # verify, no writes

The fixtures pin the exact rows every registered experiment reports at the
tiny golden settings (see ``tests/experiments/goldens.GOLDEN_SETTINGS``).
Regenerating is the *intentional* way to move those numbers: run this, then
review the JSON diff in version control like any other code change.

The tool fails loudly instead of silently rewriting history:

* ``--check`` recomputes every fixture, writes nothing, prints a diff
  summary per drifted fixture, and exits non-zero on any drift (or any
  missing fixture) — suitable for CI.
* Without ``--check``, any fixture whose bytes *changed* is reported in the
  exit status (1) so a regeneration that moved numbers can never be
  mistaken for a no-op.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT))


def _render(rows) -> str:
    return json.dumps(rows, indent=1, sort_keys=False) + "\n"


def _diff_summary(old_rows, new_rows) -> list[str]:
    """Human-sized description of what moved between two fixture row lists."""
    lines: list[str] = []
    if len(old_rows) != len(new_rows):
        lines.append(f"  row count: {len(old_rows)} -> {len(new_rows)}")
    for index, (old, new) in enumerate(zip(old_rows, new_rows)):
        if old == new:
            continue
        if isinstance(old, dict) and isinstance(new, dict):
            keys = sorted(
                set(old) | set(new),
                key=lambda key: (key not in old or key not in new, key),
            )
            changed = [
                f"{key}: {old.get(key, '<absent>')!r} -> {new.get(key, '<absent>')!r}"
                for key in keys
                if old.get(key, object()) != new.get(key, object())
            ]
            lines.append(f"  row {index}: " + "; ".join(changed[:4]))
            if len(changed) > 4:
                lines.append(f"    ... and {len(changed) - 4} more fields")
        else:
            lines.append(f"  row {index}: {old!r} -> {new!r}")
        if len(lines) >= 10:
            lines.append("  ... (diff truncated)")
            break
    return lines


def main(argv=None) -> int:
    from repro.experiments.registry import EXPERIMENTS

    from tests.experiments.goldens import GOLDEN_DIR, compute_rows, fixture_path

    args = list(argv if argv is not None else sys.argv[1:])
    check = "--check" in args
    requested = [arg for arg in args if arg != "--check"]
    unknown = [name for name in requested if name not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiments: {unknown}; known: {sorted(EXPERIMENTS)}")
        return 2
    targets = requested or sorted(EXPERIMENTS)

    GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
    drifted: list[str] = []
    for experiment_id in targets:
        rows = compute_rows(experiment_id)
        rendered = _render(rows)
        path = fixture_path(experiment_id)
        relative = path.relative_to(REPO_ROOT)
        existing = path.read_text(encoding="utf-8") if path.exists() else None

        if check:
            if existing == rendered:
                print(f"ok      {relative}")
                continue
            drifted.append(experiment_id)
            if existing is None:
                print(f"MISSING {relative}")
                continue
            print(f"DRIFT   {relative}")
            try:
                old_rows = json.loads(existing)
            except json.JSONDecodeError:
                print("  existing fixture is not valid JSON")
            else:
                for line in _diff_summary(old_rows, rows):
                    print(line)
            continue

        if existing == rendered:
            print(f"unchanged {relative}")
            continue
        path.write_text(rendered, encoding="utf-8")
        drifted.append(experiment_id)
        print(f"wrote   {relative} ({len(rows)} rows)")

    if drifted:
        verb = "drifted" if check else "rewrote"
        print(f"{verb} {len(drifted)}/{len(targets)} fixtures: {' '.join(drifted)}")
        return 1
    print(f"all {len(targets)} fixtures match")
    return 0


if __name__ == "__main__":
    sys.exit(main())
