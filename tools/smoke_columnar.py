"""CI smoke: object and columnar replay paths must be bit-identical.

Replays one standard trace (from its cached binary form, so the columnar
path decodes straight into arrays) twice through
:class:`~repro.simulation.engine.MultiPolicySimulator` — once with
``columnar=False`` (the object reference path), once with ``columnar=True``
(batch dispatch) — and diffs the full :class:`SimulationResult` JSON of
every policy.  Two passes:

* **plain pass** — a mixed policy grid: the fused batch kernels (LRU,
  FIFO, CLOCK, and the hint-aware/adaptive ARC, CAR, CLIC), a fallback
  kernel (LFU), and the offline OPT, stats and per-client accounting
  only;
* **observed pass** — SHARDED clusters x hdd cost model x rolling windows
  x open-loop queueing, so every batch-native observer (per-shard stats,
  cost, rolling, queueing) is diffed against its scalar accounting too.

Usage::

    PYTHONPATH=src python tools/smoke_columnar.py --requests 20000
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.cache.registry import create_policy
from repro.experiments.common import ExperimentSettings, trace_spec
from repro.simulation.costmodel import CostModel
from repro.simulation.engine import MultiPolicySimulator
from repro.simulation.queueing import QueueingModel
from repro.workloads.arrivals import PoissonArrivals

#: The plain pass: every fused batch kernel, one fallback kernel, offline OPT.
PLAIN_POLICIES = ("LRU", "FIFO", "CLOCK", "ARC", "CAR", "CLIC", "LFU", "OPT")

#: The observed pass: (label, sharded-cluster kwargs).
SHARDED_VARIANTS = (
    ("SHARDED[LRU]x4", {"policy": "LRU", "shards": 4, "router": "hash"}),
    ("SHARDED[ARC]x2", {"policy": "ARC", "shards": 2, "router": "hash"}),
)


def fingerprint(result) -> dict:
    """Every deterministic observable of one result, as plain data.

    ``elapsed_seconds`` is wall-clock telemetry, never replay state, so it
    is the one field dropped before diffing.
    """
    row = result.as_dict()
    row.pop("elapsed_seconds", None)
    return {
        "row": row,
        "per_client": {
            client: stats.as_dict()
            for client, stats in sorted(result.per_client.items())
        },
        "per_shard": [stats.as_dict() for stats in result.per_shard],
        "latency": None if result.latency is None else result.latency.as_dict(),
        "shard_latency": [s.as_dict() for s in result.shard_latency],
        "rolling": None if result.rolling is None else [
            (w.start, w.requests, w.read_requests, w.read_hits,
             w.write_requests, w.write_hits, w.evictions)
            for w in result.rolling.windows
        ],
        "queueing": None if result.queueing is None
        else result.queueing.report_columns(),
    }


def diff_paths(name, spec, policy_factories, **engine_kwargs) -> bool:
    """Run one grid object-vs-columnar and diff the result fingerprints."""
    fingerprints = {}
    for columnar in (False, True):
        engine = MultiPolicySimulator(
            [build() for build in policy_factories.values()],
            columnar=columnar,
            **engine_kwargs,
        )
        results = engine.run(spec)
        fingerprints[columnar] = {
            label: json.dumps(fingerprint(result), sort_keys=True)
            for label, result in zip(policy_factories, results)
        }
    ok = True
    for label in policy_factories:
        if fingerprints[False][label] != fingerprints[True][label]:
            print(f"MISMATCH [{name}] {label}: columnar result diverged "
                  "from the object path")
            ok = False
    if ok:
        print(f"{name}: {len(policy_factories)} policies identical "
              "object vs columnar")
    return ok


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--trace", default="DB2_C300")
    parser.add_argument("--requests", type=int, default=20_000)
    parser.add_argument("--seed", type=int, default=17)
    parser.add_argument("--capacity", type=int, default=1_800)
    parser.add_argument("--rolling-window", type=int, default=1_000)
    args = parser.parse_args(argv)

    settings = ExperimentSettings(target_requests=args.requests, seed=args.seed)
    spec = trace_spec(args.trace, settings)
    spec.ensure()
    print(f"trace={args.trace} requests={args.requests} "
          f"capacity={args.capacity}")

    ok = diff_paths(
        "plain",
        spec,
        {
            name: (lambda name=name: create_policy(name, capacity=args.capacity))
            for name in PLAIN_POLICIES
        },
    )

    queueing = QueueingModel(
        arrivals=PoissonArrivals(rate_rps=20_000.0, seed=7), device="hdd"
    )
    ok &= diff_paths(
        "observed (cost+rolling+queueing)",
        spec,
        {
            label: (
                lambda kwargs=kwargs: create_policy(
                    "SHARDED", capacity=args.capacity, **kwargs
                )
            )
            for label, kwargs in SHARDED_VARIANTS
        },
        cost_model=CostModel(device="hdd", page_span=2_000),
        rolling_window=args.rolling_window,
        queueing_model=queueing,
    )

    if not ok:
        print("FAIL: columnar replay is not bit-identical to the object path")
        return 1
    print("PASS: object and columnar paths bit-identical "
          "(stats, per-client, per-shard, latency, rolling, queueing)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
