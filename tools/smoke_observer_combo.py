"""CI smoke: SHARDED x cost-model x rolling observers, jobs=1 vs jobs=N.

Runs one sweep that attaches *every* built-in observer at once — per-shard
stats (SHARDED cluster policies), a seek-aware cost model (hdd), and rolling
window metrics — serially and across worker processes, and demands the two
runs are bit-identical: stats, per-client, per-shard partitions, latency,
per-shard latency, and every rolling window.  This is the one-command proof
that observer merging across replay segments changes nothing but wall-clock.

``--columnar`` pins every replay to the columnar dispatch path
(``columnar=True``) so the same observer combination is proven on batch
dispatch; without it the sweeps run the object path.

Usage::

    PYTHONPATH=src python tools/smoke_observer_combo.py --requests 8000 --jobs 2
    PYTHONPATH=src python tools/smoke_observer_combo.py --columnar
"""

from __future__ import annotations

import argparse
import sys

from repro.experiments.common import ExperimentSettings, generate_trace
from repro.simulation.costmodel import CostModel
from repro.simulation.engine import ParallelSweepRunner, PolicySpec, SweepCell


def run_sweep(requests, jobs: int, rolling_window: int, columnar: bool | None):
    cells = [
        SweepCell(
            x=float(shards),
            specs=(
                PolicySpec(
                    label=f"SHARDED[LRU]x{shards}",
                    name="SHARDED",
                    capacity=900,
                    kwargs={"policy": "LRU", "shards": shards, "router": "hash"},
                ),
                PolicySpec(
                    label=f"SHARDED[ARC]x{shards}",
                    name="SHARDED",
                    capacity=900,
                    kwargs={"policy": "ARC", "shards": shards, "router": "hash"},
                ),
            ),
        )
        for shards in (1, 2, 4)
    ]
    runner = ParallelSweepRunner(
        requests=requests,
        jobs=jobs,
        cost_model=CostModel(device="hdd", page_span=2_000),
        rolling_window=rolling_window,
        columnar=columnar,
    )
    return runner.run(cells, parameter="shards")


def fingerprint(sweep) -> dict:
    """Every observable of every point, in comparable (plain-data) form."""
    out = {}
    for label in sweep.labels():
        points = []
        for point in sweep.series[label]:
            result = point.result
            points.append({
                "x": point.x,
                "stats": result.stats.as_dict(),
                "per_client": {
                    client: stats.as_dict()
                    for client, stats in sorted(result.per_client.items())
                },
                "per_shard": [stats.as_dict() for stats in result.per_shard],
                "latency": result.latency.as_dict(),
                "shard_latency": [s.as_dict() for s in result.shard_latency],
                "rolling": [
                    (w.start, w.requests, w.read_requests, w.read_hits,
                     w.write_requests, w.write_hits, w.evictions)
                    for w in result.rolling.windows
                ],
            })
        out[label] = points
    return out


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--trace", default="DB2_C300")
    parser.add_argument("--requests", type=int, default=8_000)
    parser.add_argument("--seed", type=int, default=17)
    parser.add_argument("--jobs", type=int, default=2)
    parser.add_argument("--rolling-window", type=int, default=1_000)
    parser.add_argument(
        "--columnar", action="store_true",
        help="pin both sweeps to the columnar (batch dispatch) replay path",
    )
    args = parser.parse_args(argv)
    columnar = True if args.columnar else None

    settings = ExperimentSettings(target_requests=args.requests, seed=args.seed)
    requests = generate_trace(args.trace, settings).requests()
    print(
        f"trace={args.trace} requests={len(requests)} "
        f"observers=per-shard+cost(hdd)+rolling({args.rolling_window}) "
        f"path={'columnar' if args.columnar else 'object'}"
    )

    serial = fingerprint(run_sweep(requests, 1, args.rolling_window, columnar))
    parallel = fingerprint(
        run_sweep(requests, args.jobs, args.rolling_window, columnar)
    )

    if serial != parallel:
        for label, points in serial.items():
            if parallel.get(label) != points:
                print(f"MISMATCH in series {label!r}")
        print(f"FAIL: jobs=1 and jobs={args.jobs} disagree with all "
              "observers attached")
        return 1

    windows = sum(len(p["rolling"]) for pts in serial.values() for p in pts)
    shards = sum(len(p["per_shard"]) for pts in serial.values() for p in pts)
    print(f"PASS: jobs=1 == jobs={args.jobs} bit-identical across "
          f"{len(serial)} series ({windows} rolling windows, "
          f"{shards} shard partitions, hdd-priced)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
